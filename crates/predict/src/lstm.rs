//! A from-scratch single-layer LSTM forecaster on packed matrix kernels.
//!
//! §4.4: "The LSTM model has 1 layer and 24 units (2496 weights)". With
//! input size 1 and hidden size 24 the recurrent cell holds
//! `4·24·(1+24) = 2400` matrix weights plus `4·24 = 96` biases — exactly
//! 2496. A linear readout (24 weights + 1 bias) maps the final hidden
//! state to the forecast; the paper's count covers the cell only, which
//! [`Lstm::cell_weight_count`] asserts.
//!
//! Training: per-sample full BPTT over a fixed lookback, Adam, global-norm
//! gradient clipping, inputs scaled to `[0, 1]` (CPU percent / 100).
//!
//! # Packed cell layout and kernels
//!
//! The four gate weight matrices and their biases live in **one**
//! contiguous row-major block of shape `[4·H × (1 + input + H)]`
//! (`input = 1`): row `gate·H + j` holds unit `j` of gate `i/f/g/o`, and
//! its columns are `[bias, x-weight, h-weights…]`. Each forward step is
//! then a single [`gemm::matvec`] against the step vector
//! `v = [1, x, h_prev…]` plus one pointwise activation pass, and each
//! BPTT step is one [`gemm::rank1_acc`] (weight gradients) plus one
//! [`gemm::matvec_t_acc`] (`dh_prev = Wᵀ·dz`) — no nested scalar loops,
//! no per-step allocation (a reusable `Workspace` holds every cache).
//! Adam updates run over the packed buffer directly. Rolling-origin
//! inference ([`Lstm::forecast_online`]) batches all test positions into
//! one [`gemm::matmul`] per step, since the rolling histories are known
//! up front.
//!
//! # Equivalence with the scalar reference
//!
//! The kernels accumulate every dot product in the same ascending order
//! as the pre-kernel scalar implementation (kept as
//! [`crate::reference::ScalarLstm`]), so the packed **forward** pass is
//! bit-for-bit identical on the same weights, and `Lstm::new` draws its
//! initialization in the same RNG order, so both paths start from the
//! same logical model. The **backward** pass reorders two independent
//! reductions (the global clip norm and the `dh_prev` row sum), which
//! shifts training by floating-point round-off only; the
//! kernel-equivalence tests in `crates/predict/tests/kernel_equiv.rs`
//! pin both properties.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gemm;

/// Hyper-parameters.
#[derive(Debug, Clone)]
pub struct LstmConfig {
    /// Hidden units (paper: 24).
    pub hidden: usize,
    /// Lookback window length (number of past half-hour windows fed per
    /// prediction).
    pub lookback: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Stride between training sequences (1 = every position).
    pub stride: usize,
    /// Global-norm gradient clip.
    pub clip: f64,
    /// Initialization / shuffling seed.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            hidden: 24,
            lookback: 12,
            epochs: 6,
            lr: 0.01,
            stride: 1,
            clip: 5.0,
            seed: 7,
        }
    }
}

/// Flat parameter block with Adam moments.
#[derive(Debug, Clone)]
struct AdamParam {
    w: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamParam {
    fn new(w: Vec<f64>) -> Self {
        let n = w.len();
        AdamParam { w, m: vec![0.0; n], v: vec![0.0; n] }
    }

    #[allow(clippy::needless_range_loop)] // parallel-array update
    fn step(&mut self, grad: &[f64], lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grad[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grad[i] * grad[i];
            let mh = self.m[i] / bc1;
            let vh = self.v[i] / bc2;
            self.w[i] -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

/// The LSTM forecaster (packed-kernel implementation; see module docs).
#[derive(Debug, Clone)]
pub struct Lstm {
    cfg: LstmConfig,
    /// Packed cell block, rows = 4·H gates (i, f, g, o), cols =
    /// `[bias, x-weight, h-weights…]` (width 2 + H).
    wb: AdamParam,
    /// Readout weights, H.
    wy: AdamParam,
    /// Readout bias.
    by: AdamParam,
    adam_t: usize,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Reusable buffers for one training/inference stream: the step vector,
/// pre-activations, per-step caches, and the backward scratch. Sized for
/// the longest sequence seen so far; reused across every
/// `train_one`/`forward` call of one training run so the hot loop never
/// allocates.
struct Workspace {
    hn: usize,
    cols: usize,
    /// Step capacity the per-step caches are sized for.
    steps: usize,
    /// Step input vector `[1, x, h_prev…]`, length `cols`.
    v: Vec<f64>,
    /// Pre-activations, length 4·H.
    z: Vec<f64>,
    /// Activated gates per step (`i/f/g/o` in row layout), `steps × 4H`.
    gates: Vec<f64>,
    /// Cell states per step, `steps × H`.
    c: Vec<f64>,
    /// `tanh(c)` per step, `steps × H`.
    tanh_c: Vec<f64>,
    /// Hidden states per step, `steps × H`.
    h: Vec<f64>,
    /// Backward: dL/dh of the current step, H.
    dh: Vec<f64>,
    /// Backward: dL/dc carried across steps, H.
    dc: Vec<f64>,
    /// Backward: dL/dh_prev accumulator, H.
    dh_prev: Vec<f64>,
    /// Backward: gate pre-activation gradients, 4·H.
    dz: Vec<f64>,
    /// Packed cell gradient, same shape as `Lstm::wb`.
    gwb: Vec<f64>,
    /// Readout weight gradient, H.
    gwy: Vec<f64>,
}

impl Workspace {
    fn new(hn: usize) -> Self {
        let cols = 2 + hn;
        Workspace {
            hn,
            cols,
            steps: 0,
            v: vec![0.0; cols],
            z: vec![0.0; 4 * hn],
            gates: Vec::new(),
            c: Vec::new(),
            tanh_c: Vec::new(),
            h: Vec::new(),
            dh: vec![0.0; hn],
            dc: vec![0.0; hn],
            dh_prev: vec![0.0; hn],
            dz: vec![0.0; 4 * hn],
            gwb: vec![0.0; 4 * hn * cols],
            gwy: vec![0.0; hn],
        }
    }

    fn ensure_steps(&mut self, steps: usize) {
        if steps > self.steps {
            self.gates.resize(steps * 4 * self.hn, 0.0);
            self.c.resize(steps * self.hn, 0.0);
            self.tanh_c.resize(steps * self.hn, 0.0);
            self.h.resize(steps * self.hn, 0.0);
            self.steps = steps;
        }
    }

    /// Fill `v = [1, x, h_prev]` for step `t` from the cached states.
    fn load_v(&mut self, t: usize, x: f64) {
        let hn = self.hn;
        self.v[0] = 1.0;
        self.v[1] = x;
        if t == 0 {
            self.v[2..2 + hn].fill(0.0);
        } else {
            self.v[2..2 + hn].copy_from_slice(&self.h[(t - 1) * hn..t * hn]);
        }
    }
}

impl Lstm {
    /// Fresh, randomly-initialized model. The matrix weights are drawn
    /// in the same RNG order as the scalar reference
    /// ([`crate::reference::ScalarLstm::new`]) and scattered into the
    /// packed layout, so both implementations start from the same
    /// logical weights for a given seed.
    pub fn new(cfg: LstmConfig) -> Self {
        assert!(cfg.hidden > 0 && cfg.lookback > 0 && cfg.stride > 0);
        let h = cfg.hidden;
        let cols = 2 + h;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let k = 1.0 / (h as f64).sqrt();
        let mut wb = vec![0.0; 4 * h * cols];
        // Matrix part first (cols 1..), row-major — the reference draw
        // order.
        for row in wb.chunks_exact_mut(cols) {
            for v in &mut row[1..] {
                *v = rng.gen_range(-k..k);
            }
        }
        // Bias column: forget gate at 1.0 — the standard trick for
        // gradient flow — everything else at 0.
        for (r, row) in wb.chunks_exact_mut(cols).enumerate() {
            row[0] = if (h..2 * h).contains(&r) { 1.0 } else { 0.0 };
        }
        let wy: Vec<f64> = (0..h).map(|_| rng.gen_range(-k..k)).collect();
        Lstm {
            wb: AdamParam::new(wb),
            wy: AdamParam::new(wy),
            by: AdamParam::new(vec![0.0]),
            adam_t: 0,
            cfg,
        }
    }

    /// Trainable weights in the recurrent cell — the paper's quoted count
    /// (matrix weights plus biases; both live in the packed block).
    pub fn cell_weight_count(&self) -> usize {
        self.wb.w.len()
    }

    /// Total trainable weights including the readout.
    pub fn total_weight_count(&self) -> usize {
        self.cell_weight_count() + self.wy.w.len() + self.by.w.len()
    }

    /// Forward one sequence (normalized inputs) through the workspace,
    /// leaving all step caches populated; returns the prediction.
    fn forward_ws(&self, xs: &[f64], ws: &mut Workspace) -> f64 {
        assert!(!xs.is_empty(), "non-empty sequence");
        let hn = self.cfg.hidden;
        let c4 = 4 * hn;
        ws.ensure_steps(xs.len());
        for (t, &x) in xs.iter().enumerate() {
            ws.load_v(t, x);
            gemm::matvec(&self.wb.w, &ws.v, &mut ws.z, c4, ws.cols);
            for j in 0..hn {
                let i_g = sigmoid(ws.z[j]);
                let f_g = sigmoid(ws.z[hn + j]);
                let g_g = ws.z[2 * hn + j].tanh();
                let o_g = sigmoid(ws.z[3 * hn + j]);
                let c_prev = if t == 0 { 0.0 } else { ws.c[(t - 1) * hn + j] };
                let cj = f_g * c_prev + i_g * g_g;
                let tc = cj.tanh();
                ws.gates[t * c4 + j] = i_g;
                ws.gates[t * c4 + hn + j] = f_g;
                ws.gates[t * c4 + 2 * hn + j] = g_g;
                ws.gates[t * c4 + 3 * hn + j] = o_g;
                ws.c[t * hn + j] = cj;
                ws.tanh_c[t * hn + j] = tc;
                ws.h[t * hn + j] = o_g * tc;
            }
        }
        let last = (xs.len() - 1) * hn;
        let s: f64 = self
            .wy
            .w
            .iter()
            .zip(&ws.h[last..last + hn])
            .map(|(w, h)| w * h)
            .sum();
        self.by.w[0] + s
    }

    /// Forward without exposing the workspace (inference, single
    /// sequence). Hot inference goes through the batched
    /// [`forecast_online`](Self::forecast_online) instead.
    pub fn predict_normalized(&self, xs: &[f64]) -> f64 {
        let mut ws = Workspace::new(self.cfg.hidden);
        self.forward_ws(xs, &mut ws)
    }

    /// One SGD/Adam step on a single (sequence → target) pair. Returns the
    /// squared error before the update.
    fn train_one_ws(&mut self, xs: &[f64], target: f64, ws: &mut Workspace) -> f64 {
        let hn = self.cfg.hidden;
        let c4 = 4 * hn;
        let y = self.forward_ws(xs, ws);
        let dy = 2.0 * (y - target);
        let steps = xs.len();

        ws.gwb.fill(0.0);
        let last = (steps - 1) * hn;
        for j in 0..hn {
            ws.gwy[j] = dy * ws.h[last + j];
        }
        let gby = dy;
        for (dhj, wyj) in ws.dh.iter_mut().zip(&self.wy.w) {
            *dhj = dy * wyj;
        }
        ws.dc.fill(0.0);

        for t in (0..steps).rev() {
            // Pointwise gate gradients; `dc` becomes `dc_prev` in place
            // (each element is read once before being overwritten).
            for j in 0..hn {
                let i_g = ws.gates[t * c4 + j];
                let f_g = ws.gates[t * c4 + hn + j];
                let g_g = ws.gates[t * c4 + 2 * hn + j];
                let o_g = ws.gates[t * c4 + 3 * hn + j];
                let tc = ws.tanh_c[t * hn + j];
                let c_prev = if t == 0 { 0.0 } else { ws.c[(t - 1) * hn + j] };
                let dcj = ws.dc[j] + ws.dh[j] * o_g * (1.0 - tc * tc);
                let d_o = ws.dh[j] * tc;
                let d_i = dcj * g_g;
                let d_f = dcj * c_prev;
                let d_g = dcj * i_g;
                ws.dz[j] = d_i * i_g * (1.0 - i_g);
                ws.dz[hn + j] = d_f * f_g * (1.0 - f_g);
                ws.dz[2 * hn + j] = d_g * (1.0 - g_g * g_g);
                ws.dz[3 * hn + j] = d_o * o_g * (1.0 - o_g);
                ws.dc[j] = dcj * f_g;
            }
            // Weight gradients: one rank-1 update of the packed block.
            ws.load_v(t, xs[t]);
            gemm::rank1_acc(&mut ws.gwb, &ws.dz, &ws.v, c4, ws.cols);
            // dh_prev = Wᵀ·dz over the hidden-state columns.
            ws.dh_prev.fill(0.0);
            gemm::matvec_t_acc(&self.wb.w, &ws.dz, &mut ws.dh_prev, ws.cols, 2);
            std::mem::swap(&mut ws.dh, &mut ws.dh_prev);
        }

        // Global-norm clipping across all parameter groups (packed cell
        // gradient — weights and biases together — plus the readout).
        let norm: f64 = (ws
            .gwb
            .iter()
            .chain(&ws.gwy)
            .map(|g| g * g)
            .sum::<f64>()
            + gby * gby)
            .sqrt();
        let scale = if norm > self.cfg.clip { self.cfg.clip / norm } else { 1.0 };
        if scale < 1.0 {
            for g in ws.gwb.iter_mut().chain(&mut ws.gwy) {
                *g *= scale;
            }
        }
        let gby = [gby * scale];

        self.adam_t += 1;
        let (lr, t) = (self.cfg.lr, self.adam_t);
        self.wb.step(&ws.gwb, lr, t);
        self.wy.step(&ws.gwy, lr, t);
        self.by.step(&gby, lr, t);
        (y - target) * (y - target)
    }

    /// One training step with an ephemeral workspace (tests and
    /// single-shot callers; `train` reuses one workspace for the whole
    /// run).
    #[cfg(test)]
    fn train_one(&mut self, xs: &[f64], target: f64) -> f64 {
        let mut ws = Workspace::new(self.cfg.hidden);
        self.train_one_ws(xs, target, &mut ws)
    }

    /// Train on a window series (raw percent values). Sequences are all
    /// `lookback`-length slices (stride `cfg.stride`), target = next
    /// window. Inputs/targets are scaled by 1/100 internally.
    pub fn train(&mut self, train_windows: &[f64]) {
        let l = self.cfg.lookback;
        if train_windows.len() <= l {
            return; // nothing to learn from
        }
        let xs: Vec<f64> = train_windows.iter().map(|v| v / 100.0).collect();
        let mut order: Vec<usize> = (0..xs.len() - l).step_by(self.cfg.stride).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5eed);
        let mut ws = Workspace::new(self.cfg.hidden);
        for _ in 0..self.cfg.epochs {
            // Fisher-Yates shuffle for sample order.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &s in &order {
                self.train_one_ws(&xs[s..s + l], xs[s + l], &mut ws);
            }
        }
    }

    /// One-step-ahead forecasts over `test_windows` given the training
    /// history (both in raw percent). Each prediction sees the true
    /// history up to that point (rolling origin), like the Holt-Winters
    /// evaluation.
    ///
    /// Because every rolling history is known up front, all test
    /// positions run as **one batch**: each LSTM step is a single
    /// `[4H × (2+H)] · [(2+H) × B]` [`gemm::matmul`] plus one pointwise
    /// pass over the `B` columns. Per column the arithmetic (and its
    /// order) is identical to feeding that sequence through
    /// [`predict_normalized`](Self::predict_normalized), so the batch is
    /// bit-for-bit equal to the sequential loop it replaced.
    pub fn forecast_online(&self, train_windows: &[f64], test_windows: &[f64]) -> Vec<f64> {
        let l = self.cfg.lookback;
        let hn = self.cfg.hidden;
        let cols = 2 + hn;
        let mut history: Vec<f64> = train_windows.iter().map(|v| v / 100.0).collect();
        assert!(
            history.len() >= l,
            "history shorter than lookback ({} < {l})",
            history.len()
        );
        let nb = test_windows.len();
        if nb == 0 {
            return Vec::new();
        }
        let t0 = history.len();
        history.extend(test_windows.iter().map(|v| v / 100.0));

        // Column b runs the sequence history[t0 + b - l .. t0 + b].
        let mut vmat = vec![0.0; cols * nb]; // (2+H) × B, row-major
        vmat[..nb].fill(1.0);
        let mut h = vec![0.0; hn * nb];
        let mut c = vec![0.0; hn * nb];
        let mut z = vec![0.0; 4 * hn * nb];
        for t in 0..l {
            for b in 0..nb {
                vmat[nb + b] = history[t0 + b + t - l];
            }
            vmat[2 * nb..].copy_from_slice(&h);
            gemm::matmul(&self.wb.w, &vmat, &mut z, 4 * hn, cols, nb);
            for j in 0..hn {
                for b in 0..nb {
                    let idx = j * nb + b;
                    let i_g = sigmoid(z[idx]);
                    let f_g = sigmoid(z[(hn + j) * nb + b]);
                    let g_g = z[(2 * hn + j) * nb + b].tanh();
                    let o_g = sigmoid(z[(3 * hn + j) * nb + b]);
                    let cv = f_g * c[idx] + i_g * g_g;
                    c[idx] = cv;
                    h[idx] = o_g * cv.tanh();
                }
            }
        }
        (0..nb)
            .map(|b| {
                let mut s = 0.0;
                for j in 0..hn {
                    s += self.wy.w[j] * h[j * nb + b];
                }
                let y = self.by.w[0] + s;
                (y * 100.0).clamp(0.0, 100.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgescope_analysis::stats::rmse;

    fn cfg_small() -> LstmConfig {
        LstmConfig { epochs: 8, lookback: 8, stride: 1, ..Default::default() }
    }

    #[test]
    fn cell_weight_count_matches_paper() {
        let m = Lstm::new(LstmConfig::default());
        assert_eq!(m.cell_weight_count(), 2496);
        assert_eq!(m.total_weight_count(), 2496 + 24 + 1);
    }

    #[test]
    fn learns_constant_series() {
        let xs = vec![30.0; 120];
        let mut m = Lstm::new(cfg_small());
        m.train(&xs[..90]);
        let preds = m.forecast_online(&xs[..90], &xs[90..]);
        let err = rmse(&preds, &xs[90..]);
        assert!(err < 5.0, "rmse {err}");
    }

    #[test]
    fn learns_seasonal_series() {
        let xs: Vec<f64> = (0..48 * 10)
            .map(|i| 40.0 + 25.0 * (2.0 * std::f64::consts::PI * i as f64 / 48.0).sin())
            .collect();
        let mut m = Lstm::new(LstmConfig { epochs: 10, lookback: 16, ..Default::default() });
        let split = 48 * 8;
        m.train(&xs[..split]);
        let preds = m.forecast_online(&xs[..split], &xs[split..]);
        let err = rmse(&preds, &xs[split..]);
        // Naive previous-value baseline on this series has RMSE ≈ 3.3.
        assert!(err < 6.0, "rmse {err}");
    }

    #[test]
    fn training_reduces_error() {
        let xs: Vec<f64> = (0..48 * 6)
            .map(|i| 50.0 + 20.0 * (2.0 * std::f64::consts::PI * i as f64 / 48.0).sin())
            .collect();
        let split = 48 * 5;
        let untrained = Lstm::new(cfg_small());
        let before = rmse(&untrained.forecast_online(&xs[..split], &xs[split..]), &xs[split..]);
        let mut trained = untrained.clone();
        trained.train(&xs[..split]);
        let after = rmse(&trained.forecast_online(&xs[..split], &xs[split..]), &xs[split..]);
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn gradient_check_smoke() {
        // Finite-difference check of one weight's gradient via loss
        // difference. Uses the public API: nudging a weight must move the
        // loss in the direction the training step predicts.
        let xs = [0.2, 0.4, 0.6, 0.5, 0.3];
        let target = 0.45;
        let mut m = Lstm::new(LstmConfig { hidden: 4, lookback: 5, ..Default::default() });
        let y0 = m.predict_normalized(&xs);
        let loss0 = (y0 - target) * (y0 - target);
        // One Adam step must reduce this sample's loss (lr small enough).
        m.cfg.lr = 1e-3;
        m.train_one(&xs, target);
        let y1 = m.predict_normalized(&xs);
        let loss1 = (y1 - target) * (y1 - target);
        assert!(loss1 < loss0, "loss {loss0} -> {loss1}");
    }

    #[test]
    fn deterministic_training() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64 * 5.0).collect();
        let run = || {
            let mut m = Lstm::new(cfg_small());
            m.train(&xs[..80]);
            m.forecast_online(&xs[..80], &xs[80..])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn forecasts_clamped_to_percent_range() {
        let xs = vec![99.0; 60];
        let mut m = Lstm::new(cfg_small());
        m.train(&xs[..40]);
        for p in m.forecast_online(&xs[..40], &xs[40..]) {
            assert!((0.0..=100.0).contains(&p));
        }
    }

    #[test]
    fn batched_forecast_matches_sequential_singles() {
        // The batched GEMM inference must equal predicting each rolling
        // origin one at a time — bit for bit.
        let xs: Vec<f64> = (0..140)
            .map(|i| 35.0 + 20.0 * (2.0 * std::f64::consts::PI * i as f64 / 24.0).sin())
            .collect();
        let mut m = Lstm::new(LstmConfig { epochs: 2, lookback: 10, ..Default::default() });
        m.train(&xs[..100]);
        let batched = m.forecast_online(&xs[..100], &xs[100..]);
        let l = 10;
        let mut history: Vec<f64> = xs[..100].iter().map(|v| v / 100.0).collect();
        let mut singles = Vec::new();
        for &actual in &xs[100..] {
            let y = m.predict_normalized(&history[history.len() - l..]);
            singles.push((y * 100.0).clamp(0.0, 100.0));
            history.push(actual / 100.0);
        }
        assert_eq!(batched, singles);
    }

    #[test]
    fn empty_test_window_is_empty_forecast() {
        let m = Lstm::new(cfg_small());
        let hist = vec![10.0; 20];
        assert!(m.forecast_online(&hist, &[]).is_empty());
    }
}
