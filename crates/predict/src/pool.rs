//! Deterministic series fan-out for the prediction evaluators.
//!
//! [`fan_out`] runs one closure per series index over `jobs` crossbeam
//! scoped worker threads (the same worker-pool shape as
//! `core::executor`) and returns the results **in series-index order**,
//! so callers observe exactly the serial iteration order no matter how
//! many workers ran. Combined with per-series RNG streams
//! (`edgescope_net::rng::stream_rng`) and per-series metric scopes
//! (`edgescope_obs::scoped` + `record_set`), this makes the evaluators
//! byte-identical for every `jobs` value — determinism by construction,
//! not by serialization.
//!
//! Deliberately duplicated from `edgescope-probe`/`edgescope-trace`
//! rather than shared: the substrate crates stay independent of each
//! other, and the helper is ~40 lines.

/// Run `f(i)` for every `i in 0..n` and collect results in index order.
///
/// With `jobs <= 1` (or fewer than two series) this is a plain serial
/// map on the calling thread. Otherwise series are assigned to workers
/// in stride order (worker `w` handles `w, w + workers, …`), which
/// balances cohorts whose per-series cost varies (short series skip
/// training entirely) without any shared cursor.
///
/// `f` must be index-deterministic: the same `i` must produce the same
/// value regardless of thread — which is exactly what per-series RNG
/// streams guarantee.
pub(crate) fn fan_out<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|sc| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                sc.spawn(move |_| {
                    (w..n)
                        .step_by(workers)
                        .map(|i| (i, f(i)))
                        .collect::<Vec<(usize, T)>>()
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("prediction worker panicked") {
                slots[i] = Some(v);
            }
        }
    })
    .expect("prediction worker pool panicked");
    slots
        .into_iter()
        .map(|s| s.expect("every series index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let serial = fan_out(37, 1, |i| i * i);
        for jobs in [2, 3, 4, 8, 64] {
            assert_eq!(fan_out(37, jobs, |i| i * i), serial, "jobs {jobs}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(fan_out(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(1, 4, |i| i + 10), vec![10]);
        assert_eq!(fan_out(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn per_series_metric_scopes_replay_in_order() {
        use edgescope_obs as obs;
        let run = |jobs: usize| {
            let ((), set) = obs::scoped(|| {
                let per_series = fan_out(8, jobs, |i| {
                    obs::scoped(|| {
                        obs::counter_add("t.predict_pool", 1);
                        obs::observe("t.predict_pool_ms", i as f64, &[4.0]);
                    })
                    .1
                });
                for set in &per_series {
                    obs::record_set(set);
                }
            });
            set
        };
        assert_eq!(run(1), run(4), "metric sets must not depend on the worker count");
        assert_eq!(run(1).counter("t.predict_pool"), 8);
    }
}
