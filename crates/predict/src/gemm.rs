//! Small hand-rolled blocked matrix kernels (row-major, `f64`, no deps).
//!
//! These are the hot-path kernels behind the packed LSTM cell
//! ([`crate::lstm`]) and the batched rolling-origin inference pass. They
//! are deliberately tiny: a register-blocked matrix–vector product, a
//! 4×4-blocked GEMM, a rank-1 accumulate, and a transposed
//! matrix–vector accumulate — exactly the four shapes one BPTT step
//! needs.
//!
//! # Determinism / equivalence contract
//!
//! Every kernel accumulates each output element's dot product **in
//! ascending index order with a single accumulator**, so results are
//! bit-for-bit identical to the naive scalar triple loop (the blocking
//! only reorders *independent* output elements, never the summation
//! within one element). The kernel-equivalence golden tests in
//! `crates/predict/tests/kernel_equiv.rs` pin this: the packed LSTM
//! forward built on these kernels must match the scalar reference
//! implementation ([`crate::reference`]) exactly.
//!
//! The speedup comes from instruction-level parallelism (4 concurrent
//! per-row accumulator chains hide the FP-add latency the scalar loop
//! serializes on) and from the row-major layout walking memory
//! sequentially — not from reassociating floating-point math.

/// Register rows per block: 4 independent accumulator chains saturate
/// the FP pipelines without spilling on any mainstream core.
const MR: usize = 4;
/// Register columns per GEMM block.
const NR: usize = 4;

/// `y = A·x` for a row-major `rows × cols` matrix.
///
/// Each `y[r]` is the ascending-order dot product of row `r` with `x`
/// (bit-identical to the naive loop); rows are processed in blocks of
/// `MR` so the four dot products run on independent accumulators.
pub fn matvec(a: &[f64], x: &[f64], y: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(a.len(), rows * cols, "matrix size mismatch");
    assert_eq!(x.len(), cols, "input length mismatch");
    assert_eq!(y.len(), rows, "output length mismatch");
    let mut r = 0;
    while r + MR <= rows {
        let r0 = &a[r * cols..(r + 1) * cols];
        let r1 = &a[(r + 1) * cols..(r + 2) * cols];
        let r2 = &a[(r + 2) * cols..(r + 3) * cols];
        let r3 = &a[(r + 3) * cols..(r + 4) * cols];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        for c in 0..cols {
            let xc = x[c];
            s0 += r0[c] * xc;
            s1 += r1[c] * xc;
            s2 += r2[c] * xc;
            s3 += r3[c] * xc;
        }
        y[r] = s0;
        y[r + 1] = s1;
        y[r + 2] = s2;
        y[r + 3] = s3;
        r += MR;
    }
    for rr in r..rows {
        let row = &a[rr * cols..(rr + 1) * cols];
        let mut s = 0.0;
        for c in 0..cols {
            s += row[c] * x[c];
        }
        y[rr] = s;
    }
}

/// `C = A·B` for row-major `A (m × k)`, `B (k × n)`, `C (m × n)`.
///
/// Blocked `MR`×`NR`; within each output element the `k` reduction
/// runs in ascending order with a single accumulator, so every `C[i][j]`
/// is bit-identical to the naive triple loop.
pub fn matmul(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size mismatch");
    assert_eq!(b.len(), k * n, "B size mismatch");
    assert_eq!(c.len(), m * n, "C size mismatch");
    let mut i = 0;
    while i + MR <= m {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f64; NR]; MR];
            for p in 0..k {
                let brow = &b[p * n + j..p * n + j + NR];
                for (ii, accr) in acc.iter_mut().enumerate() {
                    let av = a[(i + ii) * k + p];
                    for (jj, cell) in accr.iter_mut().enumerate() {
                        *cell += av * brow[jj];
                    }
                }
            }
            for (ii, accr) in acc.iter().enumerate() {
                c[(i + ii) * n + j..(i + ii) * n + j + NR].copy_from_slice(accr);
            }
            j += NR;
        }
        // Column tail.
        for jj in j..n {
            for ii in 0..MR {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[(i + ii) * k + p] * b[p * n + jj];
                }
                c[(i + ii) * n + jj] = s;
            }
        }
        i += MR;
    }
    // Row tail.
    for ii in i..m {
        for jj in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                s += a[ii * k + p] * b[p * n + jj];
            }
            c[ii * n + jj] = s;
        }
    }
}

/// Rank-1 accumulate: `A += y ⊗ x` for a row-major `rows × cols` matrix.
///
/// Row updates are independent elementwise adds (one product each), so
/// there is no reduction to reorder — the result is bit-identical to the
/// scalar double loop in any order. Rows walk memory sequentially.
pub fn rank1_acc(a: &mut [f64], y: &[f64], x: &[f64], rows: usize, cols: usize) {
    assert_eq!(a.len(), rows * cols, "matrix size mismatch");
    assert_eq!(y.len(), rows, "row-scale length mismatch");
    assert_eq!(x.len(), cols, "col-vector length mismatch");
    for (r, &yr) in y.iter().enumerate() {
        let row = &mut a[r * cols..(r + 1) * cols];
        for (cell, &xc) in row.iter_mut().zip(x) {
            *cell += yr * xc;
        }
    }
}

/// Transposed matrix–vector accumulate over a column window:
/// `out[j] += Σ_r y[r] · A[r, c0 + j]` for `j in 0..out.len()`.
///
/// This is the `dh_prev = Wᵀ·dz` shape of the BPTT step restricted to
/// the hidden-state columns of the packed cell matrix. The reduction
/// over rows runs in ascending row order for every `j`, and each
/// row's contribution is a vectorizable elementwise pass.
pub fn matvec_t_acc(a: &[f64], y: &[f64], out: &mut [f64], cols: usize, c0: usize) {
    let rows = y.len();
    assert_eq!(a.len(), rows * cols, "matrix size mismatch");
    assert!(c0 + out.len() <= cols, "column window out of bounds");
    for (r, &yr) in y.iter().enumerate() {
        let row = &a[r * cols + c0..r * cols + c0 + out.len()];
        for (o, &av) in out.iter_mut().zip(row) {
            *o += yr * av;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matvec(a: &[f64], x: &[f64], rows: usize, cols: usize) -> Vec<f64> {
        (0..rows)
            .map(|r| {
                let mut s = 0.0;
                for c in 0..cols {
                    s += a[r * cols + c] * x[c];
                }
                s
            })
            .collect()
    }

    /// Deterministic pseudo-random fill (no RNG dep in this crate's tests).
    fn fill(n: usize, seed: u64) -> Vec<f64> {
        let mut z = seed;
        (0..n)
            .map(|_| {
                z = z.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn matvec_matches_naive_bitwise() {
        // Sizes around the packed LSTM shape (96 × 26) plus odd tails.
        for (rows, cols) in [(96, 26), (7, 5), (4, 1), (1, 9), (13, 13)] {
            let a = fill(rows * cols, 1);
            let x = fill(cols, 2);
            let mut y = vec![0.0; rows];
            matvec(&a, &x, &mut y, rows, cols);
            assert_eq!(y, naive_matvec(&a, &x, rows, cols), "{rows}x{cols}");
        }
    }

    #[test]
    fn matmul_matches_naive_bitwise() {
        for (m, k, n) in [(96, 26, 8), (5, 7, 3), (4, 4, 4), (9, 1, 2), (3, 26, 17)] {
            let a = fill(m * k, 3);
            let b = fill(k * n, 4);
            let mut c = vec![0.0; m * n];
            matmul(&a, &b, &mut c, m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let mut s = 0.0;
                    for p in 0..k {
                        s += a[i * k + p] * b[p * n + j];
                    }
                    assert_eq!(c[i * n + j], s, "({i},{j}) of {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn matmul_single_column_matches_matvec() {
        let (rows, cols) = (96, 26);
        let a = fill(rows * cols, 5);
        let x = fill(cols, 6);
        let mut y = vec![0.0; rows];
        matvec(&a, &x, &mut y, rows, cols);
        let mut c = vec![0.0; rows];
        matmul(&a, &x, &mut c, rows, cols, 1);
        assert_eq!(y, c, "GEMM with n=1 must equal matvec bit-for-bit");
    }

    #[test]
    fn rank1_accumulates() {
        let (rows, cols) = (6, 5);
        let mut a = fill(rows * cols, 7);
        let before = a.clone();
        let y = fill(rows, 8);
        let x = fill(cols, 9);
        rank1_acc(&mut a, &y, &x, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(a[r * cols + c], before[r * cols + c] + y[r] * x[c]);
            }
        }
    }

    #[test]
    fn matvec_t_acc_windows_columns() {
        let (rows, cols) = (8, 6);
        let a = fill(rows * cols, 10);
        let y = fill(rows, 11);
        let c0 = 2;
        let mut out = vec![0.5; 3];
        matvec_t_acc(&a, &y, &mut out, cols, c0);
        for (j, &o) in out.iter().enumerate() {
            let mut s = 0.5;
            for r in 0..rows {
                s += y[r] * a[r * cols + c0 + j];
            }
            assert_eq!(o, s, "col {j}");
        }
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let mut y: Vec<f64> = vec![];
        matvec(&[], &[], &mut y, 0, 0);
        let mut c: Vec<f64> = vec![];
        matmul(&[], &[], &mut c, 0, 0, 0);
        let mut out: Vec<f64> = vec![];
        matvec_t_acc(&[1.0, 2.0], &[1.0], &mut out, 2, 1);
    }
}
