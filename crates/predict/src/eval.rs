//! Per-VM prediction evaluation (the Fig. 14 protocol).
//!
//! For each VM: aggregate its CPU series into half-hour max/mean windows,
//! split 3 weeks train / 1 week test, train the model on the train
//! windows, produce one-step-ahead forecasts over the test windows, and
//! report RMSE in CPU percentage points. Fig. 14 then plots the CDF of
//! these per-VM RMSEs.
//!
//! # Parallel evaluation
//!
//! The paper trains "on each separated VM", so the per-VM loop is
//! embarrassingly parallel. The `*_jobs` variants fan the series out over
//! `jobs` crossbeam worker threads with the same deterministic pattern as
//! the campaign loops in `edgescope-probe`/`edgescope-trace`:
//!
//! * every series is handled by `pool::fan_out` in strided
//!   assignment, and the per-series results merge back **in series-index
//!   order**;
//! * the LSTM's per-series seed comes from its own RNG stream —
//!   `stream_seed(cfg.seed, entity_tag(PREDICT_SERIES, i))` — so no
//!   series' initialization or shuffle depends on which worker ran it,
//!   or on how many series preceded it;
//! * each series runs inside its own `edgescope-obs` metric scope, and
//!   the harvested sets are replayed into the caller's scope in series
//!   order (`record_set`), so `predict.*` counters are byte-identical at
//!   every worker count.
//!
//! The original entry points ([`evaluate_holt_winters`],
//! [`evaluate_lstm`], [`evaluate_baseline`]) are `jobs = 1` wrappers and
//! produce identical reports.
//!
//! Metrics recorded per evaluation: `predict.series_trained`,
//! `predict.series_skipped` (too short for the protocol), and
//! `predict.epochs_run` (LSTM only).

use crate::holt_winters::HoltWinters;
use crate::lstm::{Lstm, LstmConfig};
use crate::pool::fan_out;
use crate::window::{make_windows, train_test_split, Aggregation};
use edgescope_analysis::stats::rmse;
use edgescope_net::rng::{domains, entity_tag, stream_seed};
use edgescope_obs as obs;

/// RMSEs per VM for one (model, aggregation) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionReport {
    /// Model label.
    pub model: &'static str,
    /// Window aggregation evaluated.
    pub aggregation: Aggregation,
    /// One RMSE per evaluated VM, CPU percentage points.
    pub rmse_per_vm: Vec<f64>,
}

impl PredictionReport {
    /// Median RMSE (the headline Fig. 14 statistic).
    pub fn median_rmse(&self) -> f64 {
        edgescope_analysis::stats::median(&self.rmse_per_vm)
    }
}

/// Windows per day at half-hour granularity.
pub const WINDOWS_PER_DAY: usize = 48;

/// Fan the per-series evaluation `f(i) -> Option<rmse>` out over `jobs`
/// workers, replay each series' metric scope into the caller's scope in
/// series order, and collect the non-skipped RMSEs in series order.
fn eval_series<F>(n_series: usize, jobs: usize, f: F) -> Vec<f64>
where
    F: Fn(usize) -> Option<f64> + Sync,
{
    let per_series = fan_out(n_series, jobs, |i| obs::scoped(|| f(i)));
    let mut rmses = Vec::with_capacity(n_series);
    for (val, set) in &per_series {
        obs::record_set(set);
        if let Some(r) = val {
            rmses.push(*r);
        }
    }
    rmses
}

/// The windows of one series if it is long enough for the protocol,
/// recording the trained/skipped counters.
fn windows_or_skip(
    xs: &[f64],
    samples_per_half_hour: usize,
    agg: Aggregation,
    min_extra: usize,
) -> Option<Vec<f64>> {
    let windows = make_windows(xs, samples_per_half_hour, agg);
    if windows.len() < 4 * WINDOWS_PER_DAY || windows.len() <= min_extra {
        obs::counter_add("predict.series_skipped", 1);
        return None;
    }
    obs::counter_add("predict.series_trained", 1);
    Some(windows)
}

/// Evaluate Holt-Winters over a set of per-VM CPU series, fanning the
/// series out over up to `jobs` worker threads — byte-identical to the
/// serial evaluation at every worker count.
///
/// `samples_per_half_hour` converts raw sampling to windows (30 for 1-min
/// data). Series too short for two seasonal periods are skipped.
pub fn evaluate_holt_winters_jobs(
    cpu_series: &[Vec<f64>],
    samples_per_half_hour: usize,
    agg: Aggregation,
    jobs: usize,
) -> PredictionReport {
    let rmses = eval_series(cpu_series.len(), jobs, |i| {
        let windows = windows_or_skip(&cpu_series[i], samples_per_half_hour, agg, 0)?;
        let (train, test) = train_test_split(&windows);
        let mut hw = HoltWinters::fit_grid(train, WINDOWS_PER_DAY);
        let preds = hw.forecast_online(test);
        Some(rmse(&preds, test))
    });
    PredictionReport { model: "holt-winters", aggregation: agg, rmse_per_vm: rmses }
}

/// Evaluate Holt-Winters serially (a `jobs = 1` wrapper around
/// [`evaluate_holt_winters_jobs`]).
pub fn evaluate_holt_winters(
    cpu_series: &[Vec<f64>],
    samples_per_half_hour: usize,
    agg: Aggregation,
) -> PredictionReport {
    evaluate_holt_winters_jobs(cpu_series, samples_per_half_hour, agg, 1)
}

/// Evaluate the LSTM over a set of per-VM CPU series, one model per VM as
/// in the paper ("trained and tested on each separated VM"), fanned out
/// over up to `jobs` worker threads.
///
/// `cfg.seed` is the *base* seed: series `i` trains with its own derived
/// stream seed `stream_seed(cfg.seed, entity_tag(PREDICT_SERIES, i))`, so
/// every VM's initialization and shuffle order are independent of both
/// the worker count and the other series — the reports are byte-identical
/// at every `jobs` value.
pub fn evaluate_lstm_jobs(
    cpu_series: &[Vec<f64>],
    samples_per_half_hour: usize,
    agg: Aggregation,
    cfg: &LstmConfig,
    jobs: usize,
) -> PredictionReport {
    let rmses = eval_series(cpu_series.len(), jobs, |i| {
        let windows =
            windows_or_skip(&cpu_series[i], samples_per_half_hour, agg, cfg.lookback + 8)?;
        let (train, test) = train_test_split(&windows);
        let series_cfg = LstmConfig {
            seed: stream_seed(cfg.seed, entity_tag(domains::PREDICT_SERIES, i)),
            ..cfg.clone()
        };
        obs::counter_add("predict.epochs_run", series_cfg.epochs as u64);
        let mut model = Lstm::new(series_cfg);
        model.train(train);
        let preds = model.forecast_online(train, test);
        Some(rmse(&preds, test))
    });
    PredictionReport { model: "lstm", aggregation: agg, rmse_per_vm: rmses }
}

/// Evaluate the LSTM serially (a `jobs = 1` wrapper around
/// [`evaluate_lstm_jobs`]; same per-series seed derivation).
pub fn evaluate_lstm(
    cpu_series: &[Vec<f64>],
    samples_per_half_hour: usize,
    agg: Aggregation,
    cfg: &LstmConfig,
) -> PredictionReport {
    evaluate_lstm_jobs(cpu_series, samples_per_half_hour, agg, cfg, 1)
}

/// Scalar-reference counterpart of [`evaluate_lstm_jobs`]: identical
/// windowing, split, per-series seed derivation, and obs counters, but
/// training [`crate::reference::ScalarLstm`] (the pre-kernel per-element
/// loops) instead of the packed-GEMM cell. Exists so `predict-baseline
/// --check-kernel` can measure the kernel speedup on identical work; no
/// campaign calls this.
pub fn evaluate_lstm_reference_jobs(
    cpu_series: &[Vec<f64>],
    samples_per_half_hour: usize,
    agg: Aggregation,
    cfg: &LstmConfig,
    jobs: usize,
) -> PredictionReport {
    let rmses = eval_series(cpu_series.len(), jobs, |i| {
        let windows =
            windows_or_skip(&cpu_series[i], samples_per_half_hour, agg, cfg.lookback + 8)?;
        let (train, test) = train_test_split(&windows);
        let series_cfg = LstmConfig {
            seed: stream_seed(cfg.seed, entity_tag(domains::PREDICT_SERIES, i)),
            ..cfg.clone()
        };
        obs::counter_add("predict.epochs_run", series_cfg.epochs as u64);
        let mut model = crate::reference::ScalarLstm::new(series_cfg);
        model.train(train);
        let preds = model.forecast_online(train, test);
        Some(rmse(&preds, test))
    });
    PredictionReport { model: "lstm-scalar-reference", aggregation: agg, rmse_per_vm: rmses }
}

/// The baseline forecasters evaluated by [`evaluate_baseline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Previous value.
    Naive,
    /// Value one day (48 windows) ago.
    SeasonalNaive,
    /// AR(2) with a daily seasonal lag.
    SeasonalAr,
}

impl BaselineKind {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::Naive => "naive (last value)",
            BaselineKind::SeasonalNaive => "seasonal-naive (yesterday)",
            BaselineKind::SeasonalAr => "AR(2)+seasonal lag",
        }
    }
}

/// Evaluate a baseline forecaster over per-VM CPU series (same protocol
/// as [`evaluate_holt_winters_jobs`]), fanned out over up to `jobs`
/// worker threads.
pub fn evaluate_baseline_jobs(
    cpu_series: &[Vec<f64>],
    samples_per_half_hour: usize,
    agg: Aggregation,
    kind: BaselineKind,
    jobs: usize,
) -> PredictionReport {
    use crate::baselines::{naive_forecast, seasonal_naive_forecast, ArModel};
    let rmses = eval_series(cpu_series.len(), jobs, |i| {
        let windows = windows_or_skip(&cpu_series[i], samples_per_half_hour, agg, 0)?;
        let (train, test) = train_test_split(&windows);
        let preds = match kind {
            BaselineKind::Naive => naive_forecast(train, test.len(), test),
            BaselineKind::SeasonalNaive => seasonal_naive_forecast(train, test, WINDOWS_PER_DAY),
            BaselineKind::SeasonalAr => {
                ArModel::fit(train, 2, WINDOWS_PER_DAY).forecast_online(train, test)
            }
        };
        Some(rmse(&preds, test))
    });
    PredictionReport { model: kind.label(), aggregation: agg, rmse_per_vm: rmses }
}

/// Evaluate a baseline serially (a `jobs = 1` wrapper around
/// [`evaluate_baseline_jobs`]).
pub fn evaluate_baseline(
    cpu_series: &[Vec<f64>],
    samples_per_half_hour: usize,
    agg: Aggregation,
    kind: BaselineKind,
) -> PredictionReport {
    evaluate_baseline_jobs(cpu_series, samples_per_half_hour, agg, kind, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "edge-like" CPU series: strong daily cycle, 5-min
    /// sampling, `days` long.
    fn seasonal_vm(days: usize, amp: f64, noise_seed: u64) -> Vec<f64> {
        let per_day = 288; // 5-min samples
        let mut x = noise_seed as f64;
        (0..days * per_day)
            .map(|i| {
                // Cheap deterministic noise.
                x = (x * 6364136223846793005.0_f64).rem_euclid(1e9);
                let n = (x / 1e9 - 0.5) * 4.0;
                (20.0 + amp * (2.0 * std::f64::consts::PI * i as f64 / per_day as f64).sin() + n)
                    .clamp(0.0, 100.0)
            })
            .collect()
    }

    #[test]
    fn holt_winters_report_shape() {
        let series = vec![seasonal_vm(8, 12.0, 1), seasonal_vm(8, 12.0, 2)];
        let rep = evaluate_holt_winters(&series, 6, Aggregation::Mean);
        assert_eq!(rep.rmse_per_vm.len(), 2);
        assert!(rep.median_rmse() < 8.0, "median {}", rep.median_rmse());
        assert_eq!(rep.model, "holt-winters");
    }

    #[test]
    fn stronger_seasonality_predicts_better() {
        // The §4.4 mechanism: higher seasonal strength → lower RMSE.
        let strong = vec![seasonal_vm(8, 15.0, 3)];
        let weak: Vec<Vec<f64>> = vec![seasonal_vm(8, 1.0, 4)];
        let r_strong = evaluate_holt_winters(&strong, 6, Aggregation::Mean);
        // On a near-noise series the *relative* error is worse even if the
        // absolute RMSE is similar; compare RMSE normalized by std-dev of
        // the signal's predictable part (amplitude).
        let r_weak = evaluate_holt_winters(&weak, 6, Aggregation::Mean);
        let rel_strong = r_strong.median_rmse() / 15.0;
        let rel_weak = r_weak.median_rmse() / 1.0;
        assert!(rel_strong < rel_weak, "strong {rel_strong} weak {rel_weak}");
    }

    #[test]
    fn short_series_skipped() {
        let series = vec![vec![10.0; 100]];
        let rep = evaluate_holt_winters(&series, 6, Aggregation::Max);
        assert!(rep.rmse_per_vm.is_empty());
    }

    #[test]
    fn baselines_report_and_ordering() {
        // On strongly seasonal series: seasonal-naive and AR beat naive.
        let series = vec![seasonal_vm(8, 14.0, 11), seasonal_vm(8, 14.0, 12)];
        let naive = evaluate_baseline(&series, 6, Aggregation::Mean, BaselineKind::Naive);
        let snaive =
            evaluate_baseline(&series, 6, Aggregation::Mean, BaselineKind::SeasonalNaive);
        let ar = evaluate_baseline(&series, 6, Aggregation::Mean, BaselineKind::SeasonalAr);
        assert_eq!(naive.rmse_per_vm.len(), 2);
        assert!(snaive.median_rmse() < naive.median_rmse(),
            "seasonal-naive {} vs naive {}", snaive.median_rmse(), naive.median_rmse());
        assert!(ar.median_rmse() < naive.median_rmse(),
            "AR {} vs naive {}", ar.median_rmse(), naive.median_rmse());
    }

    #[test]
    fn lstm_report_runs() {
        let series = vec![seasonal_vm(6, 12.0, 5)];
        let cfg = LstmConfig { epochs: 2, lookback: 8, stride: 4, ..Default::default() };
        let rep = evaluate_lstm(&series, 6, Aggregation::Mean, &cfg);
        assert_eq!(rep.rmse_per_vm.len(), 1);
        assert!(rep.rmse_per_vm[0] < 20.0, "rmse {}", rep.rmse_per_vm[0]);
    }

    #[test]
    fn jobs_variants_match_serial() {
        let series: Vec<Vec<f64>> =
            (0..5).map(|k| seasonal_vm(8, 10.0 + k as f64, 20 + k as u64)).collect();
        let cfg = LstmConfig { epochs: 1, lookback: 8, stride: 6, ..Default::default() };
        let hw1 = evaluate_holt_winters_jobs(&series, 6, Aggregation::Mean, 1);
        let base1 =
            evaluate_baseline_jobs(&series, 6, Aggregation::Mean, BaselineKind::SeasonalAr, 1);
        let lstm1 = evaluate_lstm_jobs(&series, 6, Aggregation::Mean, &cfg, 1);
        for jobs in [2, 4, 8] {
            assert_eq!(
                evaluate_holt_winters_jobs(&series, 6, Aggregation::Mean, jobs),
                hw1,
                "HW at jobs={jobs}"
            );
            assert_eq!(
                evaluate_baseline_jobs(&series, 6, Aggregation::Mean, BaselineKind::SeasonalAr, jobs),
                base1,
                "baseline at jobs={jobs}"
            );
            assert_eq!(
                evaluate_lstm_jobs(&series, 6, Aggregation::Mean, &cfg, jobs),
                lstm1,
                "LSTM at jobs={jobs}"
            );
        }
    }

    #[test]
    fn per_series_seeds_differ() {
        // Two identical series must still train with distinct derived
        // seeds — the per-series stream is keyed by index, not content.
        let xs = seasonal_vm(8, 12.0, 9);
        let series = vec![xs.clone(), xs];
        let cfg = LstmConfig { epochs: 1, lookback: 8, stride: 6, ..Default::default() };
        let rep = evaluate_lstm(&series, 6, Aggregation::Mean, &cfg);
        assert_eq!(rep.rmse_per_vm.len(), 2);
        assert_ne!(
            rep.rmse_per_vm[0], rep.rmse_per_vm[1],
            "identical series with distinct indices must draw distinct seed streams"
        );
    }

    #[test]
    fn metrics_count_trained_and_skipped_series() {
        use edgescope_obs as obs;
        let series = vec![seasonal_vm(8, 12.0, 1), vec![10.0; 100], seasonal_vm(8, 12.0, 2)];
        let run = |jobs: usize| {
            obs::scoped(|| {
                let cfg = LstmConfig { epochs: 2, lookback: 8, stride: 6, ..Default::default() };
                evaluate_lstm_jobs(&series, 6, Aggregation::Mean, &cfg, jobs);
            })
            .1
        };
        let set = run(1);
        assert_eq!(set.counter("predict.series_trained"), 2);
        assert_eq!(set.counter("predict.series_skipped"), 1);
        assert_eq!(set.counter("predict.epochs_run"), 4);
        assert_eq!(set, run(4), "predict.* metrics must not depend on the worker count");
    }
}
