//! Per-VM prediction evaluation (the Fig. 14 protocol).
//!
//! For each VM: aggregate its CPU series into half-hour max/mean windows,
//! split 3 weeks train / 1 week test, train the model on the train
//! windows, produce one-step-ahead forecasts over the test windows, and
//! report RMSE in CPU percentage points. Fig. 14 then plots the CDF of
//! these per-VM RMSEs.

use crate::holt_winters::HoltWinters;
use crate::lstm::{Lstm, LstmConfig};
use crate::window::{make_windows, train_test_split, Aggregation};
use edgescope_analysis::stats::rmse;

/// RMSEs per VM for one (model, aggregation) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionReport {
    /// Model label.
    pub model: &'static str,
    /// Window aggregation evaluated.
    pub aggregation: Aggregation,
    /// One RMSE per evaluated VM, CPU percentage points.
    pub rmse_per_vm: Vec<f64>,
}

impl PredictionReport {
    /// Median RMSE (the headline Fig. 14 statistic).
    pub fn median_rmse(&self) -> f64 {
        edgescope_analysis::stats::median(&self.rmse_per_vm)
    }
}

/// Windows per day at half-hour granularity.
pub const WINDOWS_PER_DAY: usize = 48;

/// Evaluate Holt-Winters over a set of per-VM CPU series.
///
/// `samples_per_half_hour` converts raw sampling to windows (30 for 1-min
/// data). Series too short for two seasonal periods are skipped.
pub fn evaluate_holt_winters(
    cpu_series: &[Vec<f64>],
    samples_per_half_hour: usize,
    agg: Aggregation,
) -> PredictionReport {
    let mut rmses = Vec::with_capacity(cpu_series.len());
    for xs in cpu_series {
        let windows = make_windows(xs, samples_per_half_hour, agg);
        if windows.len() < 4 * WINDOWS_PER_DAY {
            continue;
        }
        let (train, test) = train_test_split(&windows);
        let mut hw = HoltWinters::fit_grid(train, WINDOWS_PER_DAY);
        let preds = hw.forecast_online(test);
        rmses.push(rmse(&preds, test));
    }
    PredictionReport { model: "holt-winters", aggregation: agg, rmse_per_vm: rmses }
}

/// Evaluate the LSTM over a set of per-VM CPU series. One model per VM,
/// as in the paper ("trained and tested on each separated VM").
pub fn evaluate_lstm(
    cpu_series: &[Vec<f64>],
    samples_per_half_hour: usize,
    agg: Aggregation,
    cfg: &LstmConfig,
) -> PredictionReport {
    let mut rmses = Vec::with_capacity(cpu_series.len());
    for xs in cpu_series {
        let windows = make_windows(xs, samples_per_half_hour, agg);
        if windows.len() < 4 * WINDOWS_PER_DAY || windows.len() <= cfg.lookback + 8 {
            continue;
        }
        let (train, test) = train_test_split(&windows);
        let mut model = Lstm::new(cfg.clone());
        model.train(train);
        let preds = model.forecast_online(train, test);
        rmses.push(rmse(&preds, test));
    }
    PredictionReport { model: "lstm", aggregation: agg, rmse_per_vm: rmses }
}

/// The baseline forecasters evaluated by [`evaluate_baseline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Previous value.
    Naive,
    /// Value one day (48 windows) ago.
    SeasonalNaive,
    /// AR(2) with a daily seasonal lag.
    SeasonalAr,
}

impl BaselineKind {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::Naive => "naive (last value)",
            BaselineKind::SeasonalNaive => "seasonal-naive (yesterday)",
            BaselineKind::SeasonalAr => "AR(2)+seasonal lag",
        }
    }
}

/// Evaluate a baseline forecaster over per-VM CPU series (same protocol
/// as [`evaluate_holt_winters`]).
pub fn evaluate_baseline(
    cpu_series: &[Vec<f64>],
    samples_per_half_hour: usize,
    agg: Aggregation,
    kind: BaselineKind,
) -> PredictionReport {
    use crate::baselines::{naive_forecast, seasonal_naive_forecast, ArModel};
    let mut rmses = Vec::with_capacity(cpu_series.len());
    for xs in cpu_series {
        let windows = make_windows(xs, samples_per_half_hour, agg);
        if windows.len() < 4 * WINDOWS_PER_DAY {
            continue;
        }
        let (train, test) = train_test_split(&windows);
        let preds = match kind {
            BaselineKind::Naive => naive_forecast(train, test.len(), test),
            BaselineKind::SeasonalNaive => seasonal_naive_forecast(train, test, WINDOWS_PER_DAY),
            BaselineKind::SeasonalAr => {
                ArModel::fit(train, 2, WINDOWS_PER_DAY).forecast_online(train, test)
            }
        };
        rmses.push(rmse(&preds, test));
    }
    PredictionReport {
        model: kind.label(),
        aggregation: agg,
        rmse_per_vm: rmses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "edge-like" CPU series: strong daily cycle, 5-min
    /// sampling, `days` long.
    fn seasonal_vm(days: usize, amp: f64, noise_seed: u64) -> Vec<f64> {
        let per_day = 288; // 5-min samples
        let mut x = noise_seed as f64;
        (0..days * per_day)
            .map(|i| {
                // Cheap deterministic noise.
                x = (x * 6364136223846793005.0_f64).rem_euclid(1e9);
                let n = (x / 1e9 - 0.5) * 4.0;
                (20.0 + amp * (2.0 * std::f64::consts::PI * i as f64 / per_day as f64).sin() + n)
                    .clamp(0.0, 100.0)
            })
            .collect()
    }

    #[test]
    fn holt_winters_report_shape() {
        let series = vec![seasonal_vm(8, 12.0, 1), seasonal_vm(8, 12.0, 2)];
        let rep = evaluate_holt_winters(&series, 6, Aggregation::Mean);
        assert_eq!(rep.rmse_per_vm.len(), 2);
        assert!(rep.median_rmse() < 8.0, "median {}", rep.median_rmse());
        assert_eq!(rep.model, "holt-winters");
    }

    #[test]
    fn stronger_seasonality_predicts_better() {
        // The §4.4 mechanism: higher seasonal strength → lower RMSE.
        let strong = vec![seasonal_vm(8, 15.0, 3)];
        let weak: Vec<Vec<f64>> = vec![seasonal_vm(8, 1.0, 4)];
        let r_strong = evaluate_holt_winters(&strong, 6, Aggregation::Mean);
        // On a near-noise series the *relative* error is worse even if the
        // absolute RMSE is similar; compare RMSE normalized by std-dev of
        // the signal's predictable part (amplitude).
        let r_weak = evaluate_holt_winters(&weak, 6, Aggregation::Mean);
        let rel_strong = r_strong.median_rmse() / 15.0;
        let rel_weak = r_weak.median_rmse() / 1.0;
        assert!(rel_strong < rel_weak, "strong {rel_strong} weak {rel_weak}");
    }

    #[test]
    fn short_series_skipped() {
        let series = vec![vec![10.0; 100]];
        let rep = evaluate_holt_winters(&series, 6, Aggregation::Max);
        assert!(rep.rmse_per_vm.is_empty());
    }

    #[test]
    fn baselines_report_and_ordering() {
        // On strongly seasonal series: seasonal-naive and AR beat naive.
        let series = vec![seasonal_vm(8, 14.0, 11), seasonal_vm(8, 14.0, 12)];
        let naive = evaluate_baseline(&series, 6, Aggregation::Mean, BaselineKind::Naive);
        let snaive =
            evaluate_baseline(&series, 6, Aggregation::Mean, BaselineKind::SeasonalNaive);
        let ar = evaluate_baseline(&series, 6, Aggregation::Mean, BaselineKind::SeasonalAr);
        assert_eq!(naive.rmse_per_vm.len(), 2);
        assert!(snaive.median_rmse() < naive.median_rmse(),
            "seasonal-naive {} vs naive {}", snaive.median_rmse(), naive.median_rmse());
        assert!(ar.median_rmse() < naive.median_rmse(),
            "AR {} vs naive {}", ar.median_rmse(), naive.median_rmse());
    }

    #[test]
    fn lstm_report_runs() {
        let series = vec![seasonal_vm(6, 12.0, 5)];
        let cfg = LstmConfig { epochs: 2, lookback: 8, stride: 4, ..Default::default() };
        let rep = evaluate_lstm(&series, 6, Aggregation::Mean, &cfg);
        assert_eq!(rep.rmse_per_vm.len(), 1);
        assert!(rep.rmse_per_vm[0] < 20.0, "rmse {}", rep.rmse_per_vm[0]);
    }
}
