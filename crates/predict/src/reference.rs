//! The pre-kernel scalar LSTM, kept as the equivalence/speedup reference.
//!
//! [`ScalarLstm`] is a faithful copy of the per-element implementation
//! the packed-GEMM [`crate::lstm::Lstm`] replaced: nested scalar loops
//! over `(gate, unit)` pairs with per-step cache allocations, exactly as
//! the forecaster trained before the kernel refactor. It exists for two
//! gates, not for production use:
//!
//! * **Kernel equivalence** — `crates/predict/tests/kernel_equiv.rs`
//!   asserts the packed forward pass matches this reference
//!   **bit-for-bit** on pinned seeds (both paths accumulate each dot
//!   product in the same ascending order), and that training stays
//!   within round-off over multiple BPTT/Adam steps (the packed
//!   backward reorders two *independent* reductions — the global clip
//!   norm and `dh_prev` — so training equivalence is `≈` at `1e-9`, not
//!   `==`).
//! * **Kernel speedup floor** — the `predict-baseline` binary times this
//!   reference against the packed path on the same cohort and
//!   `--check-kernel` fails CI when the measured win falls below the
//!   floor, keeping the "as fast as the hardware allows" claim
//!   measurement-gated.
//!
//! Seeding and draw order are identical to [`crate::lstm::Lstm::new`],
//! so `ScalarLstm::new(cfg)` and `Lstm::new(cfg)` hold the same logical
//! weights for the same config.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lstm::LstmConfig;

/// Flat parameter block with Adam moments (reference copy).
#[derive(Debug, Clone)]
struct AdamParam {
    w: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamParam {
    fn new(w: Vec<f64>) -> Self {
        let n = w.len();
        AdamParam { w, m: vec![0.0; n], v: vec![0.0; n] }
    }

    #[allow(clippy::needless_range_loop)] // parallel-array update
    fn step(&mut self, grad: &[f64], lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grad[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grad[i] * grad[i];
            let mh = self.m[i] / bc1;
            let vh = self.v[i] / bc2;
            self.w[i] -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

struct StepCache {
    x: f64,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    tanh_c: Vec<f64>,
    h: Vec<f64>,
}

/// The pre-kernel scalar LSTM (see module docs). Same hyper-parameters,
/// same seeding, same training protocol as [`crate::lstm::Lstm`] — only
/// the inner loops differ.
#[derive(Debug, Clone)]
pub struct ScalarLstm {
    cfg: LstmConfig,
    /// Cell matrix, rows = 4·H gates (i, f, g, o), cols = 1 + H.
    w: AdamParam,
    /// Cell biases, 4·H.
    b: AdamParam,
    /// Readout weights, H.
    wy: AdamParam,
    /// Readout bias.
    by: AdamParam,
    adam_t: usize,
}

impl ScalarLstm {
    /// Fresh model with the same weights as `Lstm::new(cfg)`.
    pub fn new(cfg: LstmConfig) -> Self {
        assert!(cfg.hidden > 0 && cfg.lookback > 0 && cfg.stride > 0);
        let h = cfg.hidden;
        let cols = 1 + h;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let k = 1.0 / (h as f64).sqrt();
        let mut init = |n: usize| -> Vec<f64> {
            (0..n).map(|_| rng.gen_range(-k..k)).collect()
        };
        let mut b = vec![0.0; 4 * h];
        // Forget-gate bias at 1.0 — the standard trick for gradient flow.
        for v in b.iter_mut().take(2 * h).skip(h) {
            *v = 1.0;
        }
        ScalarLstm {
            w: AdamParam::new(init(4 * h * cols)),
            b: AdamParam::new(b),
            wy: AdamParam::new(init(h)),
            by: AdamParam::new(vec![0.0]),
            adam_t: 0,
            cfg,
        }
    }

    /// Forward one sequence (normalized inputs); returns caches and the
    /// prediction.
    fn forward(&self, xs: &[f64]) -> (Vec<StepCache>, f64) {
        let hn = self.cfg.hidden;
        let cols = 1 + hn;
        let mut h = vec![0.0; hn];
        let mut c = vec![0.0; hn];
        let mut caches = Vec::with_capacity(xs.len());
        for &x in xs {
            let h_prev = h.clone();
            let c_prev = c.clone();
            let mut i_g = vec![0.0; hn];
            let mut f_g = vec![0.0; hn];
            let mut g_g = vec![0.0; hn];
            let mut o_g = vec![0.0; hn];
            for j in 0..hn {
                let mut acc = [0.0f64; 4];
                for (gate, a) in acc.iter_mut().enumerate() {
                    let row = gate * hn + j;
                    let base = row * cols;
                    let mut s = self.b.w[row] + self.w.w[base] * x;
                    for (k2, &hp) in h_prev.iter().enumerate() {
                        s += self.w.w[base + 1 + k2] * hp;
                    }
                    *a = s;
                }
                i_g[j] = sigmoid(acc[0]);
                f_g[j] = sigmoid(acc[1]);
                g_g[j] = acc[2].tanh();
                o_g[j] = sigmoid(acc[3]);
                c[j] = f_g[j] * c_prev[j] + i_g[j] * g_g[j];
                h[j] = o_g[j] * c[j].tanh();
            }
            caches.push(StepCache {
                x,
                h_prev,
                c_prev,
                i: i_g,
                f: f_g,
                g: g_g,
                o: o_g,
                tanh_c: c.iter().map(|v| v.tanh()).collect(),
                h: h.clone(),
            });
        }
        let last = caches.last().expect("non-empty sequence");
        let y = self.by.w[0]
            + self
                .wy
                .w
                .iter()
                .zip(&last.h)
                .map(|(w, h)| w * h)
                .sum::<f64>();
        (caches, y)
    }

    /// Forward without caches (inference).
    pub fn predict_normalized(&self, xs: &[f64]) -> f64 {
        self.forward(xs).1
    }

    /// One SGD/Adam step on a single (sequence → target) pair. Returns
    /// the squared error before the update.
    #[allow(clippy::needless_range_loop)] // hidden-unit indices span several arrays
    pub fn train_one(&mut self, xs: &[f64], target: f64) -> f64 {
        let hn = self.cfg.hidden;
        let cols = 1 + hn;
        let (caches, y) = self.forward(xs);
        let dy = 2.0 * (y - target);

        let mut gw = vec![0.0; self.w.w.len()];
        let mut gb = vec![0.0; self.b.w.len()];
        let mut gwy = vec![0.0; hn];
        let gby = vec![dy];

        let last = caches.last().unwrap();
        for j in 0..hn {
            gwy[j] = dy * last.h[j];
        }
        let mut dh: Vec<f64> = self.wy.w.iter().map(|w| dy * w).collect();
        let mut dc = vec![0.0; hn];

        for cache in caches.iter().rev() {
            let mut dh_prev = vec![0.0; hn];
            let mut dc_prev = vec![0.0; hn];
            for j in 0..hn {
                let dcj = dc[j] + dh[j] * cache.o[j] * (1.0 - cache.tanh_c[j] * cache.tanh_c[j]);
                let d_o = dh[j] * cache.tanh_c[j];
                let d_i = dcj * cache.g[j];
                let d_f = dcj * cache.c_prev[j];
                let d_g = dcj * cache.i[j];
                let dz = [
                    d_i * cache.i[j] * (1.0 - cache.i[j]),
                    d_f * cache.f[j] * (1.0 - cache.f[j]),
                    d_g * (1.0 - cache.g[j] * cache.g[j]),
                    d_o * cache.o[j] * (1.0 - cache.o[j]),
                ];
                for (gate, &dzv) in dz.iter().enumerate() {
                    let row = gate * hn + j;
                    let base = row * cols;
                    gb[row] += dzv;
                    gw[base] += dzv * cache.x;
                    for k2 in 0..hn {
                        gw[base + 1 + k2] += dzv * cache.h_prev[k2];
                        dh_prev[k2] += dzv * self.w.w[base + 1 + k2];
                    }
                }
                dc_prev[j] = dcj * cache.f[j];
            }
            dh = dh_prev;
            dc = dc_prev;
        }

        // Global-norm clipping across all parameter groups.
        let norm: f64 = gw
            .iter()
            .chain(&gb)
            .chain(&gwy)
            .chain(&gby)
            .map(|g| g * g)
            .sum::<f64>()
            .sqrt();
        let scale = if norm > self.cfg.clip { self.cfg.clip / norm } else { 1.0 };
        if scale < 1.0 {
            for g in gw.iter_mut().chain(&mut gb).chain(&mut gwy) {
                *g *= scale;
            }
        }
        let gby = [gby[0] * scale];

        self.adam_t += 1;
        let (lr, t) = (self.cfg.lr, self.adam_t);
        self.w.step(&gw, lr, t);
        self.b.step(&gb, lr, t);
        self.wy.step(&gwy, lr, t);
        self.by.step(&gby, lr, t);
        (y - target) * (y - target)
    }

    /// Train on a window series (raw percent values) — the same epochs,
    /// shuffle stream, and sample order as `Lstm::train`.
    pub fn train(&mut self, train_windows: &[f64]) {
        let l = self.cfg.lookback;
        if train_windows.len() <= l {
            return; // nothing to learn from
        }
        let xs: Vec<f64> = train_windows.iter().map(|v| v / 100.0).collect();
        let mut order: Vec<usize> = (0..xs.len() - l).step_by(self.cfg.stride).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5eed);
        for _ in 0..self.cfg.epochs {
            // Fisher-Yates shuffle for sample order.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &s in &order {
                self.train_one(&xs[s..s + l], xs[s + l]);
            }
        }
    }

    /// One-step-ahead forecasts over `test_windows` given the training
    /// history (both in raw percent), rolling origin.
    pub fn forecast_online(&self, train_windows: &[f64], test_windows: &[f64]) -> Vec<f64> {
        let l = self.cfg.lookback;
        let mut history: Vec<f64> = train_windows.iter().map(|v| v / 100.0).collect();
        assert!(
            history.len() >= l,
            "history shorter than lookback ({} < {l})",
            history.len()
        );
        let mut out = Vec::with_capacity(test_windows.len());
        for &actual in test_windows {
            let seq = &history[history.len() - l..];
            let y = self.predict_normalized(seq);
            out.push((y * 100.0).clamp(0.0, 100.0));
            history.push(actual / 100.0);
        }
        out
    }
}
