#![warn(missing_docs)]
//! # edgescope-predict
//!
//! VM usage prediction, reproducing §4.4 / Fig. 14: predict the max/mean
//! CPU usage of the next half-hour window from history, per VM, with
//!
//! * **Holt-Winters** ([`holt_winters`]) — additive triple exponential
//!   smoothing with a daily seasonal period, the paper's classical
//!   baseline;
//! * **LSTM** ([`lstm`]) — a from-scratch single-layer LSTM with 24 hidden
//!   units. The recurrent cell has exactly `4·24·(1+24) + 4·24 = 2496`
//!   trainable weights — the figure the paper quotes — plus a 25-parameter
//!   linear readout (the paper's count covers the cell only). Trained with
//!   full BPTT and Adam.
//!
//! Baselines bounding the comparison — last-value, seasonal-naive, and an
//! AR(p) with seasonal lag (the AR core of the ARIMA approach the paper's
//! prediction citations use) — live in [`baselines`].
//!
//! Shared plumbing: [`window`] builds the half-hour max/mean supervision
//! windows and the 3-week-train / 1-week-test split; [`eval`] runs either
//! model per VM and reports RMSE in CPU percentage points (the unit of
//! Fig. 14's x-axis). The per-VM loop is embarrassingly parallel — the
//! paper trains "on each separated VM" — so [`eval`] also ships
//! `*_jobs` variants that fan the series out over crossbeam worker
//! threads with per-series RNG streams and per-series `edgescope-obs`
//! metric scopes, byte-identical to the serial path at every worker
//! count.
//!
//! ## Hot-path kernels
//! The LSTM cell runs on the packed blocked kernels in [`gemm`]: the four
//! gate weight matrices live in one contiguous `[4·hidden × (2+hidden)]`
//! block so each forward/BPTT step is one GEMM + pointwise pass, and
//! rolling-origin inference batches all test positions through one
//! matrix–matrix product per step. The Holt-Winters smoothing grid is
//! evaluated in a single pass over the series with shared state arrays.
//! Both batched paths are pinned to the scalar reference implementation
//! ([`mod@reference`]) by kernel-equivalence golden tests.
//!
//! ## Omitted
//! No GPU, no training batches across VMs (the paper trains "on each
//! separated VM" — training stays per-VM; only the rolling-origin
//! *inference* positions within one VM are batched), no hyper-parameter
//! search beyond Holt-Winters' small smoothing grid — matching the
//! paper's fixed 1-layer/24-unit setup.

pub mod baselines;
pub mod eval;
pub mod gemm;
pub mod holt_winters;
pub mod lstm;
mod pool;
pub mod reference;
pub mod window;

pub use baselines::{naive_forecast, seasonal_naive_forecast, ArModel};
pub use eval::{
    evaluate_baseline, evaluate_baseline_jobs, evaluate_holt_winters,
    evaluate_holt_winters_jobs, evaluate_lstm, evaluate_lstm_jobs, BaselineKind,
    PredictionReport,
};
pub use holt_winters::HoltWinters;
pub use lstm::{Lstm, LstmConfig};
pub use window::{make_windows, train_test_split, Aggregation};
