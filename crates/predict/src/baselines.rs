//! Baseline forecasters: naive, seasonal-naive, and an autoregressive
//! model.
//!
//! §4.4 compares Holt-Winters and an LSTM; the workload-prediction
//! literature it cites (Calheiros et al.'s ARIMA work) adds the classical
//! autoregressive family. These baselines bound the comparison:
//! last-value and seasonal-naive are the floors any model must beat, and
//! [`ArModel`] is an AR(p) fitted by ordinary least squares on lagged
//! values (the AR core of ARIMA; the trace windows are stationary enough
//! after the seasonal lag that differencing is unnecessary — asserted in
//! tests).

/// Predict the previous value.
pub fn naive_forecast(train: &[f64], test_len: usize, test: &[f64]) -> Vec<f64> {
    assert!(!train.is_empty(), "naive needs history");
    assert!(test.len() >= test_len, "test too short");
    let mut last = *train.last().unwrap();
    (0..test_len)
        .map(|i| {
            let f = last;
            last = test[i];
            f
        })
        .collect()
}

/// Predict the value one season ago (period `m`).
pub fn seasonal_naive_forecast(train: &[f64], test: &[f64], m: usize) -> Vec<f64> {
    assert!(train.len() >= m, "need one full season of history");
    let mut history: Vec<f64> = train.to_vec();
    test.iter()
        .map(|&x| {
            let f = history[history.len() - m];
            history.push(x);
            f
        })
        .collect()
}

/// An AR(p) model with an optional seasonal lag term:
/// `x_t = c + Σ φ_i·x_{t-i} + φ_s·x_{t-m}`.
#[derive(Debug, Clone)]
pub struct ArModel {
    /// Non-seasonal order.
    pub p: usize,
    /// Seasonal period (0 = no seasonal term).
    pub m: usize,
    coeffs: Vec<f64>, // [c, φ_1..φ_p, (φ_s)]
}

impl ArModel {
    /// Fit by OLS on the training series. Panics if the series is shorter
    /// than `p + m + 8` (not enough equations).
    pub fn fit(train: &[f64], p: usize, m: usize) -> Self {
        assert!(p >= 1, "order must be positive");
        let max_lag = p.max(m);
        assert!(
            train.len() >= max_lag + 8,
            "series too short: {} for lags {max_lag}",
            train.len()
        );
        let n_feat = 1 + p + usize::from(m > 0);
        // Normal equations X'X β = X'y via Gaussian elimination.
        let mut xtx = vec![vec![0.0f64; n_feat]; n_feat];
        let mut xty = vec![0.0f64; n_feat];
        for t in max_lag..train.len() {
            let mut row = Vec::with_capacity(n_feat);
            row.push(1.0);
            for i in 1..=p {
                row.push(train[t - i]);
            }
            if m > 0 {
                row.push(train[t - m]);
            }
            for a in 0..n_feat {
                xty[a] += row[a] * train[t];
                for b in 0..n_feat {
                    xtx[a][b] += row[a] * row[b];
                }
            }
        }
        // Ridge epsilon keeps degenerate (constant) series solvable.
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-8;
        }
        let coeffs = solve(xtx, xty);
        ArModel { p, m, coeffs }
    }

    /// One-step forecast given the full history so far.
    pub fn forecast_next(&self, history: &[f64]) -> f64 {
        let n = history.len();
        let mut y = self.coeffs[0];
        for i in 1..=self.p {
            y += self.coeffs[i] * history[n - i];
        }
        if self.m > 0 {
            y += self.coeffs[1 + self.p] * history[n - self.m];
        }
        y
    }

    /// Rolling one-step forecasts over `test`.
    pub fn forecast_online(&self, train: &[f64], test: &[f64]) -> Vec<f64> {
        let mut history: Vec<f64> = train.to_vec();
        assert!(history.len() >= self.p.max(self.m), "history shorter than lags");
        test.iter()
            .map(|&x| {
                let f = self.forecast_next(&history);
                history.push(x);
                f
            })
            .collect()
    }
}

/// Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // index-based elimination reads clearer
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot. NaN magnitudes are demoted below every real candidate:
        // under the raw IEEE total order NaN ranks *above* +inf, so a
        // poisoned column would win the pivot and then trip the singular
        // assert (or worse, silently pick a wrong pivot).
        let key = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
        let pivot = (col..n)
            .max_by(|&i, &j| key(a[i][col].abs()).total_cmp(&key(a[j][col].abs())))
            .unwrap();
        a.swap(col, pivot);
        b.swap(col, pivot);
        let d = a[col][col];
        assert!(d.abs() > 1e-12, "singular normal equations");
        for row in col + 1..n {
            let f = a[row][col] / d;
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in col + 1..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgescope_analysis::stats::rmse;

    fn seasonal(n: usize, m: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| 40.0 + amp * (2.0 * std::f64::consts::PI * i as f64 / m as f64).sin())
            .collect()
    }

    #[test]
    fn naive_shifts_by_one() {
        let train = [1.0, 2.0, 3.0];
        let test = [4.0, 5.0, 6.0];
        assert_eq!(naive_forecast(&train, 3, &test), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn seasonal_naive_nails_pure_season() {
        let xs = seasonal(48 * 6, 48, 20.0);
        let (train, test) = (&xs[..48 * 5], &xs[48 * 5..]);
        let preds = seasonal_naive_forecast(train, test, 48);
        assert!(rmse(&preds, test) < 1e-9);
    }

    #[test]
    fn ar_recovers_ar1_process() {
        // x_t = 5 + 0.8 x_{t-1}: deterministic version converges to 25.
        let mut xs = vec![0.0];
        for _ in 0..200 {
            let last = *xs.last().unwrap();
            xs.push(5.0 + 0.8 * last);
        }
        let model = ArModel::fit(&xs, 1, 0);
        // One-step forecasts should be near-exact.
        let preds = model.forecast_online(&xs[..150], &xs[150..]);
        assert!(rmse(&preds, &xs[150..]) < 1e-3);
    }

    #[test]
    fn seasonal_ar_beats_plain_ar_on_seasonal_data() {
        let xs: Vec<f64> = seasonal(48 * 8, 48, 15.0)
            .iter()
            .enumerate()
            .map(|(i, v)| v + ((i as f64 * 12.9898).sin() * 43758.5453).fract() * 2.0)
            .collect();
        let split = 48 * 6;
        let plain = ArModel::fit(&xs[..split], 2, 0);
        let seasonal_model = ArModel::fit(&xs[..split], 2, 48);
        let e_plain = rmse(&plain.forecast_online(&xs[..split], &xs[split..]), &xs[split..]);
        let e_seasonal =
            rmse(&seasonal_model.forecast_online(&xs[..split], &xs[split..]), &xs[split..]);
        assert!(e_seasonal < e_plain, "seasonal {e_seasonal} vs plain {e_plain}");
    }

    #[test]
    fn constant_series_fits_without_blowup() {
        let xs = vec![30.0; 300];
        let model = ArModel::fit(&xs, 3, 24);
        let preds = model.forecast_online(&xs[..250], &xs[250..]);
        assert!(rmse(&preds, &xs[250..]) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_series_rejected() {
        ArModel::fit(&[1.0; 10], 2, 24);
    }
}
