//! Supervision windows for the §4.4 prediction task.
//!
//! The task: "predict the max/mean CPU usage of next half-hour window
//! based on the historical data", with each VM's month split into 3 weeks
//! of training and 1 week of testing.

/// How raw samples are aggregated into half-hour windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Maximum within the window (Fig. 14a).
    Max,
    /// Mean within the window (Fig. 14b).
    Mean,
}

/// Aggregate a raw sample series into half-hour windows.
///
/// `samples_per_window` is how many raw samples form one half-hour (30 for
/// 1-minute CPU sampling, 6 for 5-minute). A trailing partial window is
/// dropped — a short final window would bias max/mean differently.
pub fn make_windows(xs: &[f64], samples_per_window: usize, agg: Aggregation) -> Vec<f64> {
    assert!(samples_per_window > 0, "window must be positive");
    xs.chunks_exact(samples_per_window)
        .map(|c| match agg {
            Aggregation::Max => edgescope_analysis::stats::peak_max(c),
            Aggregation::Mean => c.iter().sum::<f64>() / c.len() as f64,
        })
        .collect()
}

/// Split a window series 3:1 (3 weeks train / 1 week test by sample
/// count). Panics if the series has fewer than 8 windows — nothing
/// meaningful can be learned or measured below that.
pub fn train_test_split(windows: &[f64]) -> (&[f64], &[f64]) {
    assert!(windows.len() >= 8, "need at least 8 windows, got {}", windows.len());
    let split = windows.len() * 3 / 4;
    (&windows[..split], &windows[split..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_and_mean_windows() {
        let xs = [1.0, 5.0, 2.0, 8.0, 4.0, 6.0];
        assert_eq!(make_windows(&xs, 2, Aggregation::Max), vec![5.0, 8.0, 6.0]);
        assert_eq!(make_windows(&xs, 2, Aggregation::Mean), vec![3.0, 5.0, 5.0]);
    }

    #[test]
    fn trailing_partial_window_dropped() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(make_windows(&xs, 2, Aggregation::Mean), vec![1.5, 3.5]);
    }

    #[test]
    fn split_three_to_one() {
        let w: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (train, test) = train_test_split(&w);
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        assert_eq!(test[0], 75.0);
    }

    #[test]
    #[should_panic(expected = "at least 8 windows")]
    fn tiny_series_rejected() {
        train_test_split(&[1.0; 7]);
    }
}
