//! Property-based tests of the trace generators and (de)serializers.

use bytes::Bytes;
use edgescope_trace::app::AppCategory;
use edgescope_trace::flavor::FlavorParams;
use edgescope_trace::io::{series_from_bytes, series_to_bytes, vm_table_from_tsv, vm_table_to_tsv};
use edgescope_trace::series::{TraceConfig, VmProfile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_category(idx: usize) -> AppCategory {
    const ALL: [AppCategory; 10] = [
        AppCategory::LiveStreaming,
        AppCategory::OnlineEducation,
        AppCategory::ContentDelivery,
        AppCategory::VideoConference,
        AppCategory::VideoSurveillance,
        AppCategory::CloudGaming,
        AppCategory::WebService,
        AppCategory::DevTest,
        AppCategory::BatchCompute,
        AppCategory::Database,
    ];
    ALL[idx % ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cpu_series_always_valid(
        seed in 0u64..2000,
        cat in 0usize..10,
        util in 0.1..90.0f64,
        days in 1usize..10,
        interval in prop::sample::select(vec![1usize, 5, 10, 30, 60]),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = FlavorParams::edge_nep();
        let p = VmProfile::draw(&mut rng, &params, any_category(cat), util, 100.0);
        let cfg = TraceConfig { days, cpu_interval_min: interval, bw_interval_min: 60, start_weekday: 0 };
        let xs = p.cpu_series(&mut rng, &cfg);
        prop_assert_eq!(xs.len(), cfg.cpu_samples());
        for v in &xs {
            prop_assert!((0.0..=100.0).contains(v));
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn bw_series_always_nonnegative(
        seed in 0u64..2000,
        cat in 0usize..10,
        sub in 1.0..1000.0f64,
        days in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = FlavorParams::cloud_azure();
        let p = VmProfile::draw(&mut rng, &params, any_category(cat), 10.0, sub);
        let cfg = TraceConfig { days, cpu_interval_min: 60, bw_interval_min: 30, start_weekday: 0 };
        let xs = p.bw_series(&mut rng, &cfg);
        prop_assert_eq!(xs.len(), cfg.bw_samples());
        for v in &xs {
            prop_assert!(*v >= 0.0 && v.is_finite());
        }
        // Mean bandwidth stays below the subscription (customers
        // over-provision, §4.2).
        let mean = xs.iter().map(|&v| v as f64).sum::<f64>() / xs.len() as f64;
        prop_assert!(mean < sub * 1.5, "mean {mean} vs subscription {sub}");
    }

    #[test]
    fn series_parser_never_panics_on_noise(raw in prop::collection::vec(any::<u8>(), 0..400)) {
        // Corrupt/random input must produce Err or Ok, never a panic.
        let _ = series_from_bytes(Bytes::from(raw));
    }

    #[test]
    fn vm_table_parser_never_panics_on_noise(s in "\\PC*") {
        let _ = vm_table_from_tsv(&s);
    }

    #[test]
    fn series_truncation_always_detected(
        seed in 0u64..200,
        cut in 1usize..64,
    ) {
        let cfg = TraceConfig { days: 1, cpu_interval_min: 60, bw_interval_min: 120, start_weekday: 0 };
        let ds = edgescope_trace::dataset::TraceDataset::generate_azure(seed, 2, 3, cfg);
        let bytes = series_to_bytes(&ds.series);
        prop_assume!(cut < bytes.len());
        let truncated = bytes.slice(0..bytes.len() - cut);
        prop_assert!(series_from_bytes(truncated).is_err());
    }

    #[test]
    fn tsv_roundtrip_any_generated_population(seed in 0u64..500) {
        let cfg = TraceConfig { days: 1, cpu_interval_min: 60, bw_interval_min: 120, start_weekday: 0 };
        let ds = edgescope_trace::dataset::TraceDataset::generate_azure(seed, 3, 5, cfg);
        let parsed = vm_table_from_tsv(&vm_table_to_tsv(&ds.records)).unwrap();
        prop_assert_eq!(parsed, ds.records);
    }
}
