//! NaN regression tests for the trace aggregations swept in the
//! `partial_cmp().unwrap()` → `f64::total_cmp` pass.
//!
//! Contract: a NaN CPU or bandwidth sample must neither panic an
//! aggregation nor *win* a heaviest-first ranking; where an aggregate
//! touches the poison, the NaN propagates (it is never laundered to 0).

use edgescope_trace::{TraceConfig, TraceDataset};

fn small_cfg() -> TraceConfig {
    TraceConfig { days: 5, cpu_interval_min: 30, bw_interval_min: 60, start_weekday: 0 }
}

fn poisoned() -> TraceDataset {
    let (mut ds, _) = TraceDataset::generate_nep(11, 12, 20, small_cfg());
    assert!(ds.n_vms() > 2, "need VMs to poison");
    ds.series[0].cpu_util_pct[1] = f32::NAN;
    ds.series[0].bw_mbps[0] = f32::NAN;
    ds
}

#[test]
fn per_vm_aggregates_survive_nan_samples() {
    let ds = poisoned();
    // Sorting a NaN CPU series must not panic; the poisoned VM's own
    // aggregates carry the NaN, every other VM stays finite.
    let p95 = ds.p95_cpu_per_vm();
    let means = ds.mean_cpu_per_vm();
    let cvs = ds.cpu_cv_per_vm();
    assert_eq!(p95.len(), ds.n_vms());
    assert!(means[0].is_nan(), "mean must propagate the poisoned sample");
    for i in 1..ds.n_vms() {
        assert!(means[i].is_finite() && p95[i].is_finite() && cvs[i].is_finite(), "vm {i}");
    }
}

#[test]
fn heaviest_apps_demotes_nan_totals() {
    let ds = poisoned();
    let poisoned_app = ds.records[0].app;
    let ranked = ds.heaviest_apps(ds.records.len());
    assert!(!ranked.is_empty());
    // The poisoned app's total is NaN: it must rank last, never first —
    // under the raw IEEE total order it would have beaten every finite
    // volume into the §4.5 top-50.
    assert_ne!(ranked[0], poisoned_app, "NaN-volume app won the heaviest ranking");
    assert_eq!(*ranked.last().unwrap(), poisoned_app, "NaN total must sort to the bottom");
}

#[test]
fn site_aggregates_survive_nan_bandwidth() {
    let ds = poisoned();
    let site = ds.records[0].site;
    // The site aggregate sums the poisoned VM in: NaN propagates to the
    // affected sample instead of vanishing into the sum.
    let series = ds.site_bw_series(site);
    assert!(series[0].is_nan(), "site sum must carry the poison");
    // Server/site rollups must not panic either.
    let _ = ds.server_bw();
    let _ = ds.site_bw();
}
