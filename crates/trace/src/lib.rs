#![warn(missing_docs)]
//! # edgescope-trace
//!
//! Synthetic workload traces standing in for (a) NEP's proprietary
//! three-month VM trace and (b) the public Azure 2019 dataset, with the
//! §2.1.2 schema: a VM table (placement, customer, app), per-VM resource
//! sizes, CPU usage sampled every minute, and bandwidth sampled every five
//! minutes.
//!
//! The generators are *calibrated to the distributions the paper reports*
//! (§4.1–§4.4) rather than to any confidential raw data:
//!
//! | statistic | NEP target | Azure target |
//! |---|---|---|
//! | median vCPU / VM (Fig. 8) | 8 | 1 (90 % ≤ 4) |
//! | median memory / VM (Fig. 8) | 32 GB | 4 GB (70 % ≤ 4) |
//! | storage / VM | median 100 GB, mean 650 GB | n/a |
//! | apps with ≥ 50 VMs (Fig. 9) | ≈ 9.6 % | ≈ 6.1 % |
//! | VMs under 10 % mean CPU (Fig. 10a) | ≈ 74 % | ≈ 47 % |
//! | median CPU CV over time (Fig. 10b) | ≈ 0.48 | ≈ 0.24 |
//! | apps with > 50× cross-VM usage gap (Fig. 13a) | ≈ 16.3 % | ≈ 0.1 % |
//! | mean seasonal strength (§4.4) | ≈ 0.42 | ≈ 0.26 |
//!
//! Modules:
//! * [`app`] — application categories (§4.1's list) and their temporal
//!   shapes;
//! * [`flavor`] — the edge/cloud population parameter sets;
//! * [`population`] — VM-table generation, including NEP placement through
//!   `edgescope-platform`'s policy;
//! * [`series`] — CPU/bandwidth time-series generation (diurnal + weekly
//!   patterns, noise, drift);
//! * [`dataset`] — the assembled [`dataset::TraceDataset`] with per-app /
//!   per-site / per-server accessors;
//! * [`io`] — TSV (VM table) and length-prefixed binary (series)
//!   serialization.
//!
//! ## Parallelism and determinism
//! Series synthesis is data-parallel over VMs: VM `i`'s series draws
//! from the `(seed, entity_tag(TRACE_VM, i))` stream
//! (`edgescope_net::rng::stream_rng`), and the app-level base draws come
//! from a dedicated `TRACE_APP` stream — so
//! [`dataset::TraceDataset::generate_nep_jobs`] /
//! [`dataset::TraceDataset::generate_azure_jobs`] produce byte-identical
//! datasets at every worker count.
//!
//! ## Omitted
//! Kernel/image metadata from the schema (os type, image id) is carried as
//! opaque small integers — nothing in the paper's analysis reads more than
//! "same image = same app", which the generator encodes directly in
//! [`population`].
//!
//! ## Observability
//! Generators report to `edgescope-obs` scoped metrics when a scope is
//! active: `trace.vms_generated`, `trace.cpu_samples`,
//! `trace.bw_samples`, `trace.vm_requests_skipped` (population VMs
//! dropped because the platform was full). Counters draw no randomness
//! and never change generated data.

pub mod app;
pub mod dataset;
pub mod flavor;
pub mod io;
mod pool;
pub mod population;
pub mod series;
pub mod stream;
pub mod validate;

pub use app::AppCategory;
pub use dataset::{TraceDataset, VmSeries};
pub use flavor::{Flavor, FlavorParams};
pub use population::VmRecord;
pub use series::TraceConfig;
pub use stream::{stream_azure_stats_jobs, stream_nep_stats_jobs, StreamingTraceStats};
pub use validate::{validate, Violation};
