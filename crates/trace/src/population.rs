//! VM-population generation: the §2.1.2 VM table.
//!
//! Every app gets a customer, a category, a heavy-tailed VM count
//! (Fig. 9), and VMs sized per the flavour's tables (Fig. 8). NEP VMs are
//! placed onto a real [`Deployment`] through the §2 placement policy; cloud
//! VMs land in one of the cloud's regions (clouds centralize, §3.1's
//! "all clouds" baseline).

use crate::flavor::{Flavor, FlavorParams, MemMode};
use crate::app::AppCategory;
use edgescope_net::rng::{bounded_pareto, log_normal, log_normal_mean_cv};
use edgescope_platform::deployment::Deployment;
use edgescope_platform::ids::{AppId, CustomerId, ServerId, SiteId, VmId};
use edgescope_platform::placement::{PlacementError, PlacementPolicy, Scope, SubscriptionRequest};
use edgescope_platform::resources::VmSpec;
use rand::Rng;

/// One row of the VM table.
#[derive(Debug, Clone, PartialEq)]
pub struct VmRecord {
    /// VM id (globally unique).
    pub vm: VmId,
    /// Owning app (same image = same app, 2).
    pub app: AppId,
    /// Owning customer.
    pub customer: CustomerId,
    /// Application category.
    pub category: AppCategory,
    /// Hosting site.
    pub site: SiteId,
    /// Hosting server.
    pub server: ServerId,
    /// Subscribed vCPU cores.
    pub cores: u32,
    /// Subscribed memory, GB.
    pub mem_gb: u32,
    /// Subscribed disk, GB.
    pub disk_gb: u32,
    /// Subscribed public bandwidth, Mbps.
    pub bandwidth_mbps: f64,
    /// Image id — same for all VMs of an app (§2's app definition).
    pub image_id: u32,
    /// Opaque OS tag (0 = linux-ish, 1 = windows-ish).
    pub os_type: u8,
}

fn sample_weighted(rng: &mut impl Rng, table: &[(u32, f64)]) -> u32 {
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut t = rng.gen::<f64>() * total;
    for (v, w) in table {
        t -= w;
        if t <= 0.0 {
            return *v;
        }
    }
    table.last().expect("empty weight table").0
}

fn sample_spec(rng: &mut impl Rng, params: &FlavorParams, category: AppCategory) -> VmSpec {
    let cores = sample_weighted(rng, params.core_weights);
    let mem_gb = match params.mem_mode {
        MemMode::PerCore(per) => cores * per,
        MemMode::Table(t) => sample_weighted(rng, t),
    };
    let mu = params.storage_median_gb.ln();
    let disk_gb = log_normal(rng, mu, params.storage_sigma).clamp(10.0, 20_000.0) as u32;
    let bandwidth = log_normal_mean_cv(rng, category.bandwidth_intensity() * cores as f64, 0.5);
    VmSpec::new(cores, mem_gb.max(1), disk_gb.max(10), bandwidth)
}

/// Draw a per-app VM count from the flavour's bounded Pareto.
pub fn sample_app_vm_count(rng: &mut impl Rng, params: &FlavorParams) -> usize {
    bounded_pareto(rng, params.app_vms_alpha, 1.0, params.max_vms_per_app).round() as usize
}

/// Generate an NEP-flavoured population of `n_apps` apps placed on
/// `deployment` (whose allocation state is mutated). Apps request VMs in
/// 1–4 population-weighted provinces, exactly like §2's subscription flow;
/// requests that exceed a province's remaining capacity fall back to
/// `Anywhere`, and an app is truncated only if the whole platform is full.
pub fn generate_nep(
    rng: &mut impl Rng,
    params: &FlavorParams,
    deployment: &mut Deployment,
    n_apps: usize,
) -> Vec<VmRecord> {
    assert_eq!(params.flavor, Flavor::EdgeNep, "NEP generator needs edge params");
    let policy = PlacementPolicy::default();
    let mut next_vm = 0u32;
    let mut records = Vec::new();

    // "New sites are added to NEP frequently" (§4.3) — the paper's
    // explanation for extreme cross-site skew. Model it: the last quarter
    // of sites come online only after 80 % of apps have subscribed, by
    // carrying a prohibitive placement score until then.
    let late_from = deployment.sites.len() - deployment.sites.len() / 4;
    for site in &mut deployment.sites[late_from..] {
        for server in &mut site.servers {
            server.observed_cpu_util = 1e6;
        }
    }
    let activation_app = n_apps * 4 / 5;

    // Province weights from the deployment itself (capacity follows
    // population already).
    let provinces: Vec<&'static str> = {
        let mut v: Vec<&'static str> = deployment.sites.iter().map(|s| s.province()).collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    for app_idx in 0..n_apps {
        if app_idx == activation_app {
            // The late sites come online (and, being empty, immediately
            // become the placement policy's favourites — as in reality).
            for site in &mut deployment.sites[late_from..] {
                for server in &mut site.servers {
                    server.observed_cpu_util = 0.0;
                }
            }
        }
        let app = AppId(app_idx as u32);
        let customer = CustomerId(app_idx as u32 / 2); // customers run ~2 apps
        let category = AppCategory::sample(rng, params.category_mix);
        let total_vms = sample_app_vm_count(rng, params);
        let n_scopes = (1 + rng.gen_range(0..4usize)).min(provinces.len());
        let os_type = (rng.gen::<f64>() < 0.15) as u8;

        // Split the VM count across the chosen provinces.
        let mut remaining = total_vms;
        for s in 0..n_scopes {
            if remaining == 0 {
                break;
            }
            let take = if s == n_scopes - 1 {
                remaining
            } else {
                (remaining / (n_scopes - s)).clamp(1, remaining)
            };
            remaining -= take;
            let province = provinces[rng.gen_range(0..provinces.len())];
            // Specs vary per VM (commercial apps mix sizes; Fig. 8's CDF
            // is per-VM), so each VM is its own placement request.
            for _ in 0..take {
                let spec = sample_spec(rng, params, category);
                let mut req = SubscriptionRequest {
                    scope: Scope::Province(province.to_string()),
                    count: 1,
                    spec,
                };
                let placements = match policy.place(deployment, &req, &mut next_vm) {
                    Ok(p) => p,
                    Err(PlacementError::NoSuchScope)
                    | Err(PlacementError::InsufficientCapacity { .. }) => {
                        req.scope = Scope::Anywhere;
                        match policy.place(deployment, &req, &mut next_vm) {
                            Ok(p) => p,
                            Err(_) => {
                                // Platform full: skip VM.
                                edgescope_obs::counter_inc("trace.vm_requests_skipped");
                                continue;
                            }
                        }
                    }
                };
                for p in placements {
                    records.push(VmRecord {
                        vm: p.vm,
                        app,
                        customer,
                        category,
                        site: p.site,
                        server: p.server,
                        cores: spec.cpu_cores,
                        mem_gb: spec.mem_gb,
                        disk_gb: spec.disk_gb,
                        bandwidth_mbps: spec.bandwidth_mbps,
                        image_id: app.0,
                        os_type,
                    });
                }
            }
        }
    }
    records
}

/// Generate a cloud-flavoured population of `n_apps` apps across
/// `n_regions` regions. Cloud customers centralize: each app picks ONE
/// region for all its VMs (§3.1: "most cloud customers cannot afford to
/// deploy their apps on every cloud site but only one in a centralized
/// manner").
pub fn generate_cloud(
    rng: &mut impl Rng,
    params: &FlavorParams,
    n_regions: u32,
    n_apps: usize,
) -> Vec<VmRecord> {
    assert_eq!(params.flavor, Flavor::CloudAzure, "cloud generator needs cloud params");
    assert!(n_regions > 0, "need at least one region");
    let mut records = Vec::new();
    let mut next_vm = 0u32;
    let mut next_server = 0u32;
    for app_idx in 0..n_apps {
        let app = AppId(app_idx as u32);
        let customer = CustomerId(app_idx as u32); // clouds: many small customers
        let category = AppCategory::sample(rng, params.category_mix);
        let total_vms = sample_app_vm_count(rng, params);
        let region = SiteId(rng.gen_range(0..n_regions));
        let os_type = (rng.gen::<f64>() < 0.35) as u8;
        for i in 0..total_vms {
            let spec = sample_spec(rng, params, category);
            // Model ~40 VMs per cloud server slice; exact server identity
            // only matters for NEP's balance analysis.
            if i % 40 == 0 {
                next_server += 1;
            }
            records.push(VmRecord {
                vm: VmId(next_vm),
                app,
                customer,
                category,
                site: region,
                server: ServerId(next_server - 1),
                cores: spec.cpu_cores,
                mem_gb: spec.mem_gb,
                disk_gb: spec.disk_gb,
                bandwidth_mbps: spec.bandwidth_mbps,
                image_id: app.0,
                os_type,
            });
            next_vm += 1;
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgescope_analysis::stats::median;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nep_records(seed: u64, n_apps: usize) -> Vec<VmRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dep = Deployment::nep(&mut rng, 120);
        generate_nep(&mut rng, &FlavorParams::edge_nep(), &mut dep, n_apps)
    }

    fn cloud_records(seed: u64, n_apps: usize) -> Vec<VmRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_cloud(&mut rng, &FlavorParams::cloud_azure(), 10, n_apps)
    }

    #[test]
    fn nep_core_median_is_8() {
        let recs = nep_records(1, 150);
        assert!(recs.len() > 500, "population size {}", recs.len());
        let cores: Vec<f64> = recs.iter().map(|r| r.cores as f64).collect();
        assert_eq!(median(&cores), 8.0);
        let mems: Vec<f64> = recs.iter().map(|r| r.mem_gb as f64).collect();
        assert_eq!(median(&mems), 32.0);
    }

    #[test]
    fn cloud_core_median_is_1() {
        let recs = cloud_records(2, 300);
        let cores: Vec<f64> = recs.iter().map(|r| r.cores as f64).collect();
        assert_eq!(median(&cores), 1.0);
        let le4 = cores.iter().filter(|&&c| c <= 4.0).count() as f64 / cores.len() as f64;
        assert!((le4 - 0.90).abs() < 0.04, "≤4 cores {le4}");
        let mems: Vec<f64> = recs.iter().map(|r| r.mem_gb as f64).collect();
        let mle4 = mems.iter().filter(|&&m| m <= 4.0).count() as f64 / mems.len() as f64;
        assert!((mle4 - 0.70).abs() < 0.05, "≤4 GB {mle4}");
    }

    #[test]
    fn nep_storage_median_and_mean() {
        let recs = nep_records(3, 200);
        let disks: Vec<f64> = recs.iter().map(|r| r.disk_gb as f64).collect();
        let med = median(&disks);
        let mean = disks.iter().sum::<f64>() / disks.len() as f64;
        assert!((med - 100.0).abs() < 35.0, "storage median {med}");
        assert!((400.0..1000.0).contains(&mean), "storage mean {mean}");
    }

    #[test]
    fn heavy_tailed_app_sizes() {
        // Fig. 9: ≈9.6 % of NEP apps and ≈6.1 % of cloud apps have ≥50 VMs.
        let mut rng = StdRng::seed_from_u64(4);
        let nep = FlavorParams::edge_nep();
        let counts: Vec<usize> = (0..4000).map(|_| sample_app_vm_count(&mut rng, &nep)).collect();
        let frac50 = counts.iter().filter(|&&c| c >= 50).count() as f64 / counts.len() as f64;
        assert!((frac50 - 0.096).abs() < 0.02, "NEP ≥50-VM share {frac50}");
        assert!(counts.iter().all(|&c| (1..=1000).contains(&c)));

        let az = FlavorParams::cloud_azure();
        let counts: Vec<usize> = (0..4000).map(|_| sample_app_vm_count(&mut rng, &az)).collect();
        let frac50 = counts.iter().filter(|&&c| c >= 50).count() as f64 / counts.len() as f64;
        assert!((frac50 - 0.061).abs() < 0.02, "cloud ≥50-VM share {frac50}");
    }

    #[test]
    fn nep_placement_is_consistent() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut dep = Deployment::nep(&mut rng, 120);
        let recs = generate_nep(&mut rng, &FlavorParams::edge_nep(), &mut dep, 100);
        // Every record's site hosts its server and the server hosts the VM.
        for r in &recs {
            let site = dep.sites.iter().find(|s| s.id == r.site).expect("site");
            let server = site.servers.iter().find(|s| s.id == r.server).expect("server");
            assert!(server.vms().iter().any(|(v, _)| *v == r.vm));
        }
        // VM ids are unique.
        let mut ids: Vec<u32> = recs.iter().map(|r| r.vm.0).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn apps_share_image_ids() {
        let recs = nep_records(6, 50);
        for r in &recs {
            assert_eq!(r.image_id, r.app.0);
        }
    }

    #[test]
    fn cloud_apps_centralized_one_region() {
        let recs = cloud_records(7, 100);
        use std::collections::HashMap;
        let mut per_app: HashMap<u32, Vec<u32>> = HashMap::new();
        for r in &recs {
            per_app.entry(r.app.0).or_default().push(r.site.0);
        }
        for (_, sites) in per_app {
            let first = sites[0];
            assert!(sites.iter().all(|&s| s == first), "cloud app spans regions");
        }
    }

    #[test]
    fn nep_large_apps_span_sites() {
        let recs = nep_records(8, 200);
        use std::collections::HashMap;
        let mut per_app: HashMap<u32, Vec<u32>> = HashMap::new();
        for r in &recs {
            per_app.entry(r.app.0).or_default().push(r.site.0);
        }
        let multi = per_app
            .values()
            .filter(|sites| sites.len() >= 20)
            .filter(|sites| {
                let mut s = sites.to_vec();
                s.sort_unstable();
                s.dedup();
                s.len() > 1
            })
            .count();
        let large = per_app.values().filter(|s| s.len() >= 20).count();
        assert!(large > 0, "need some large apps");
        // A single-province app can occasionally fit inside one site, so
        // require most — not all — large apps to be geo-distributed.
        assert!(
            multi as f64 >= 0.8 * large as f64,
            "only {multi}/{large} large edge apps span several sites"
        );
    }
}
