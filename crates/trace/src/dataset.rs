//! Assembled trace datasets with the accessors §4's analyses need.
//!
//! A [`TraceDataset`] bundles the VM table with per-VM CPU/bandwidth
//! series and exposes the groupings the paper's figures aggregate over:
//! per-VM statistics (Fig. 10), per-app VM groups (Figs. 9/13), and
//! per-server / per-site resource roll-ups (Fig. 11, computed exactly as
//! the figure caption specifies: machine CPU = core-weighted mean of its
//! VMs' CPU, site CPU = mean over machines, bandwidth = sums).

use crate::flavor::{Flavor, FlavorParams};
use crate::pool::fan_out;
use crate::population::{generate_cloud, generate_nep, VmRecord};
use crate::series::{TraceConfig, VmProfile};
use edgescope_net::rng::{domains, entity_tag, log_normal, stream_rng};
use edgescope_platform::deployment::Deployment;
use edgescope_platform::ids::{AppId, ServerId, SiteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Per-VM time series.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSeries {
    /// CPU utilization in percent, one sample per `cpu_interval_min`.
    pub cpu_util_pct: Vec<f32>,
    /// Public bandwidth in Mbps, one sample per `bw_interval_min`.
    pub bw_mbps: Vec<f32>,
}

/// A complete trace: VM table + series, aligned by index.
#[derive(Debug, Clone)]
pub struct TraceDataset {
    /// Which platform this trace models.
    pub flavor: Flavor,
    /// Sampling configuration.
    pub config: TraceConfig,
    /// The VM table.
    pub records: Vec<VmRecord>,
    /// Per-VM series, aligned with `records` by index.
    pub series: Vec<VmSeries>,
}

/// Draw the per-app base utilization (percent) from the flavour's
/// idle/busy mixture.
fn draw_app_base_util(rng: &mut impl Rng, p: &FlavorParams) -> f64 {
    if rng.gen::<f64>() < p.idle_prob {
        log_normal(rng, p.idle_median_pct.ln(), p.idle_sigma)
    } else {
        log_normal(rng, p.busy_median_pct.ln(), p.busy_sigma)
    }
}

/// Draw the per-app within-app sigma (spread of its VMs' mean usage).
fn draw_within_sigma(rng: &mut impl Rng, p: &FlavorParams) -> f64 {
    log_normal(rng, p.within_app_sigma_median.ln(), p.within_app_sigma_spread)
}

/// Per-app temporal identity: base utilization and within-app spread are
/// app-level draws (an app's VMs resemble each other). They come from a
/// single dedicated stream, drawn serially in record first-appearance
/// order, so the app table is independent of how the per-VM work is
/// split afterwards. Shared by the batch and streaming generators.
pub(crate) fn app_table(
    seed: u64,
    params: &FlavorParams,
    records: &[VmRecord],
) -> BTreeMap<AppId, (f64, f64)> {
    let mut app_rng = stream_rng(seed, entity_tag(domains::TRACE_APP, 0));
    let mut app_base: BTreeMap<AppId, (f64, f64)> = BTreeMap::new();
    for r in records {
        app_base.entry(r.app).or_insert_with(|| {
            (draw_app_base_util(&mut app_rng, params), draw_within_sigma(&mut app_rng, params))
        });
    }
    app_base
}

/// Synthesize VM `i`'s series from its own `(seed, i)` stream — the one
/// function both the batch dataset and the streaming statistics call, so
/// the two paths are draw-for-draw identical by construction.
pub(crate) fn vm_series_for(
    seed: u64,
    params: &FlavorParams,
    r: &VmRecord,
    (base, sigma): (f64, f64),
    i: usize,
    config: &TraceConfig,
) -> VmSeries {
    let mut rng = stream_rng(seed, entity_tag(domains::TRACE_VM, i));
    // Mean-preserving within-app spread.
    let factor = log_normal(&mut rng, -sigma * sigma / 2.0, sigma);
    let mean_util = (base * factor).clamp(0.1, 95.0);
    let profile = VmProfile::draw(&mut rng, params, r.category, mean_util, r.bandwidth_mbps);
    VmSeries {
        cpu_util_pct: profile.cpu_series(&mut rng, config),
        bw_mbps: profile.bw_series(&mut rng, config),
    }
}

impl TraceDataset {
    /// Generate an NEP trace: builds a deployment of `n_sites`, places
    /// `n_apps` apps through the §2 policy, and synthesizes series.
    /// Returns the dataset together with the (now populated) deployment.
    /// Equivalent to [`TraceDataset::generate_nep_jobs`] with one worker.
    pub fn generate_nep(
        seed: u64,
        n_sites: usize,
        n_apps: usize,
        config: TraceConfig,
    ) -> (Self, Deployment) {
        Self::generate_nep_jobs(seed, n_sites, n_apps, config, 1)
    }

    /// Generate an NEP trace with series synthesis fanned out over up to
    /// `jobs` worker threads. The deployment, placement, and VM table
    /// draw from the same sequence as the serial path, and each VM's
    /// series comes from its own RNG stream, so the dataset is
    /// byte-identical for every `jobs` value.
    pub fn generate_nep_jobs(
        seed: u64,
        n_sites: usize,
        n_apps: usize,
        config: TraceConfig,
        jobs: usize,
    ) -> (Self, Deployment) {
        let params = FlavorParams::edge_nep();
        let mut rng = StdRng::seed_from_u64(seed);
        // Workload studies use smaller sites (10–40 servers) so the placed
        // population reaches realistic sales ratios; the national latency
        // deployment keeps the paper's 10–180 range.
        let mut deployment = Deployment::nep_custom(&mut rng, n_sites, 10, 40);
        let records = generate_nep(&mut rng, &params, &mut deployment, n_apps);
        let series = Self::make_series(seed, &params, &records, &config, jobs);
        (
            TraceDataset { flavor: Flavor::EdgeNep, config, records, series },
            deployment,
        )
    }

    /// Generate an Azure-like cloud trace over `n_regions` regions.
    /// Equivalent to [`TraceDataset::generate_azure_jobs`] with one
    /// worker.
    pub fn generate_azure(seed: u64, n_regions: u32, n_apps: usize, config: TraceConfig) -> Self {
        Self::generate_azure_jobs(seed, n_regions, n_apps, config, 1)
    }

    /// Generate an Azure-like cloud trace with series synthesis fanned
    /// out over up to `jobs` worker threads (see
    /// [`TraceDataset::generate_nep_jobs`] for the determinism contract).
    pub fn generate_azure_jobs(
        seed: u64,
        n_regions: u32,
        n_apps: usize,
        config: TraceConfig,
        jobs: usize,
    ) -> Self {
        let params = FlavorParams::cloud_azure();
        let mut rng = StdRng::seed_from_u64(seed);
        let records = generate_cloud(&mut rng, &params, n_regions, n_apps);
        let series = Self::make_series(seed, &params, &records, &config, jobs);
        TraceDataset { flavor: Flavor::CloudAzure, config, records, series }
    }

    fn make_series(
        seed: u64,
        params: &FlavorParams,
        records: &[VmRecord],
        config: &TraceConfig,
        jobs: usize,
    ) -> Vec<VmSeries> {
        let app_base = app_table(seed, params, records);
        // Each VM's series draws from its own stream, so VM `i`'s series
        // is a function of `(seed, i)` alone and the fan-out can run at
        // any worker count.
        let series = fan_out(records.len(), jobs, |i| {
            vm_series_for(seed, params, &records[i], app_base[&records[i].app], i, config)
        });
        // Totals are order-free, so they are recorded once on the caller
        // thread rather than inside the fan-out.
        edgescope_obs::counter_add("trace.vms_generated", series.len() as u64);
        edgescope_obs::counter_add(
            "trace.cpu_samples",
            series.iter().map(|s| s.cpu_util_pct.len() as u64).sum(),
        );
        edgescope_obs::counter_add(
            "trace.bw_samples",
            series.iter().map(|s| s.bw_mbps.len() as u64).sum(),
        );
        series
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.records.len()
    }

    /// Mean CPU utilization per VM (percent).
    pub fn mean_cpu_per_vm(&self) -> Vec<f64> {
        self.series
            .iter()
            .map(|s| s.cpu_util_pct.iter().map(|&v| v as f64).sum::<f64>()
                / s.cpu_util_pct.len().max(1) as f64)
            .collect()
    }

    /// 95th percentile of the CPU samples per VM — the paper's "P95 Max"
    /// curve of Fig. 10(a).
    pub fn p95_cpu_per_vm(&self) -> Vec<f64> {
        self.series
            .iter()
            .map(|s| {
                let mut xs: Vec<f64> = s.cpu_util_pct.iter().map(|&v| v as f64).collect();
                xs.sort_by(f64::total_cmp);
                let rank = 0.95 * (xs.len() - 1) as f64;
                xs[rank.round() as usize]
            })
            .collect()
    }

    /// Across-time CPU coefficient of variation per VM (Fig. 10b).
    pub fn cpu_cv_per_vm(&self) -> Vec<f64> {
        self.series
            .iter()
            .map(|s| {
                let xs: Vec<f64> = s.cpu_util_pct.iter().map(|&v| v as f64).collect();
                let m = xs.iter().sum::<f64>() / xs.len() as f64;
                if m == 0.0 {
                    return 0.0;
                }
                let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
                var.sqrt() / m
            })
            .collect()
    }

    /// Mean bandwidth per VM (Mbps).
    pub fn mean_bw_per_vm(&self) -> Vec<f64> {
        self.series
            .iter()
            .map(|s| s.bw_mbps.iter().map(|&v| v as f64).sum::<f64>()
                / s.bw_mbps.len().max(1) as f64)
            .collect()
    }

    /// VM indices per app, ordered by app id.
    pub fn vms_per_app(&self) -> BTreeMap<AppId, Vec<usize>> {
        let mut m: BTreeMap<AppId, Vec<usize>> = BTreeMap::new();
        for (i, r) in self.records.iter().enumerate() {
            m.entry(r.app).or_default().push(i);
        }
        m
    }

    /// VM indices per server.
    pub fn vms_per_server(&self) -> BTreeMap<ServerId, Vec<usize>> {
        let mut m: BTreeMap<ServerId, Vec<usize>> = BTreeMap::new();
        for (i, r) in self.records.iter().enumerate() {
            m.entry(r.server).or_default().push(i);
        }
        m
    }

    /// VM indices per site.
    pub fn vms_per_site(&self) -> BTreeMap<SiteId, Vec<usize>> {
        let mut m: BTreeMap<SiteId, Vec<usize>> = BTreeMap::new();
        for (i, r) in self.records.iter().enumerate() {
            m.entry(r.site).or_default().push(i);
        }
        m
    }

    /// Fig. 11(a) machine metric: a machine's CPU usage is the
    /// core-weighted mean CPU of its hosted VMs. Returns per-server values
    /// (servers hosting at least one VM).
    pub fn server_weighted_cpu(&self) -> Vec<f64> {
        let means = self.mean_cpu_per_vm();
        self.vms_per_server()
            .values()
            .map(|idxs| {
                let mut wsum = 0.0;
                let mut w = 0.0;
                for &i in idxs {
                    let cores = self.records[i].cores as f64;
                    wsum += means[i] * cores;
                    w += cores;
                }
                wsum / w
            })
            .collect()
    }

    /// Fig. 11(b) site metric: site CPU = mean over its machines' weighted
    /// CPU. Returns `(site, value)` pairs.
    pub fn site_cpu(&self) -> Vec<(SiteId, f64)> {
        let means = self.mean_cpu_per_vm();
        let mut per_server: BTreeMap<ServerId, (SiteId, f64, f64)> = BTreeMap::new();
        for (i, r) in self.records.iter().enumerate() {
            let e = per_server.entry(r.server).or_insert((r.site, 0.0, 0.0));
            e.1 += means[i] * r.cores as f64;
            e.2 += r.cores as f64;
        }
        let mut per_site: BTreeMap<SiteId, (f64, usize)> = BTreeMap::new();
        for (_, (site, wsum, w)) in per_server {
            let e = per_site.entry(site).or_insert((0.0, 0));
            e.0 += wsum / w;
            e.1 += 1;
        }
        per_site
            .into_iter()
            .map(|(s, (sum, n))| (s, sum / n as f64))
            .collect()
    }

    /// Fig. 11(c) machine bandwidth: summed mean bandwidth of hosted VMs.
    pub fn server_bw(&self) -> Vec<f64> {
        let means = self.mean_bw_per_vm();
        self.vms_per_server()
            .values()
            .map(|idxs| idxs.iter().map(|&i| means[i]).sum())
            .collect()
    }

    /// Fig. 11(d) site bandwidth: summed over all VMs in the site.
    pub fn site_bw(&self) -> Vec<(SiteId, f64)> {
        let means = self.mean_bw_per_vm();
        self.vms_per_site()
            .into_iter()
            .map(|(s, idxs)| (s, idxs.iter().map(|&i| means[i]).sum()))
            .collect()
    }

    /// Aggregate bandwidth series of one site (element-wise sum over its
    /// VMs) — the input to NEP's per-site network billing (§4.5 / App. D).
    pub fn site_bw_series(&self, site: SiteId) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.config.bw_samples()];
        for (i, r) in self.records.iter().enumerate() {
            if r.site == site {
                for (a, &v) in acc.iter_mut().zip(&self.series[i].bw_mbps) {
                    *a += v as f64;
                }
            }
        }
        acc
    }

    /// Per-app cross-VM usage gap: P95/P5 of the per-VM mean CPU of each
    /// app with at least `min_vms` VMs (Fig. 13a).
    pub fn app_usage_gaps(&self, min_vms: usize) -> Vec<f64> {
        let means = self.mean_cpu_per_vm();
        self.vms_per_app()
            .values()
            .filter(|idxs| idxs.len() >= min_vms)
            .map(|idxs| {
                let xs: Vec<f64> = idxs.iter().map(|&i| means[i]).collect();
                edgescope_analysis::imbalance::gap_p95_p5(&xs, 0.1)
            })
            .collect()
    }

    /// Total traffic volume per app (sum of mean bandwidth across VMs) —
    /// used to pick §4.5's "50 heaviest apps".
    pub fn heaviest_apps(&self, n: usize) -> Vec<AppId> {
        let means = self.mean_bw_per_vm();
        let mut totals: Vec<(AppId, f64)> = self
            .vms_per_app()
            .into_iter()
            .map(|(a, idxs)| (a, idxs.iter().map(|&i| means[i]).sum()))
            .collect();
        // NaN totals are demoted below every real volume: heaviest-first
        // under the raw IEEE total order would rank NaN above +inf and
        // hand a poisoned app a top-50 slot.
        let key = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
        totals.sort_by(|a, b| key(b.1).total_cmp(&key(a.1)));
        totals.into_iter().take(n).map(|(a, _)| a).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TraceConfig {
        TraceConfig { days: 7, cpu_interval_min: 10, bw_interval_min: 30, start_weekday: 0 }
    }

    #[test]
    fn nep_dataset_shape() {
        let (ds, dep) = TraceDataset::generate_nep(1, 40, 40, small_cfg());
        assert!(ds.n_vms() > 100, "{} VMs", ds.n_vms());
        assert_eq!(ds.records.len(), ds.series.len());
        assert_eq!(dep.n_sites(), 40);
        for s in &ds.series {
            assert_eq!(s.cpu_util_pct.len(), ds.config.cpu_samples());
            assert_eq!(s.bw_mbps.len(), ds.config.bw_samples());
        }
    }

    #[test]
    fn azure_dataset_shape() {
        let ds = TraceDataset::generate_azure(2, 10, 60, small_cfg());
        assert!(ds.n_vms() > 100);
        assert_eq!(ds.flavor, Flavor::CloudAzure);
    }

    #[test]
    fn per_vm_stats_consistent() {
        let (ds, _) = TraceDataset::generate_nep(3, 30, 30, small_cfg());
        let means = ds.mean_cpu_per_vm();
        let p95s = ds.p95_cpu_per_vm();
        let cvs = ds.cpu_cv_per_vm();
        assert_eq!(means.len(), ds.n_vms());
        for i in 0..ds.n_vms() {
            assert!(means[i] >= 0.0 && means[i] <= 100.0);
            assert!(p95s[i] + 1e-9 >= means[i] * 0.5, "p95 can't sit far below mean");
            assert!(cvs[i] >= 0.0);
        }
    }

    #[test]
    fn groupings_partition_vms() {
        let (ds, _) = TraceDataset::generate_nep(4, 30, 30, small_cfg());
        let by_app: usize = ds.vms_per_app().values().map(|v| v.len()).sum();
        let by_server: usize = ds.vms_per_server().values().map(|v| v.len()).sum();
        let by_site: usize = ds.vms_per_site().values().map(|v| v.len()).sum();
        assert_eq!(by_app, ds.n_vms());
        assert_eq!(by_server, ds.n_vms());
        assert_eq!(by_site, ds.n_vms());
    }

    #[test]
    fn site_bw_series_sums_vm_series() {
        let (ds, _) = TraceDataset::generate_nep(5, 20, 15, small_cfg());
        let site = ds.records[0].site;
        let agg = ds.site_bw_series(site);
        assert_eq!(agg.len(), ds.config.bw_samples());
        // Spot-check one timestep.
        let t = agg.len() / 2;
        let manual: f64 = ds
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.site == site)
            .map(|(i, _)| ds.series[i].bw_mbps[t] as f64)
            .sum();
        assert!((agg[t] - manual).abs() < 1e-6);
    }

    #[test]
    fn heaviest_apps_sorted_by_traffic() {
        let (ds, _) = TraceDataset::generate_nep(6, 30, 40, small_cfg());
        let heavy = ds.heaviest_apps(5);
        assert_eq!(heavy.len(), 5);
        let means = ds.mean_bw_per_vm();
        let totals: BTreeMap<AppId, f64> = ds
            .vms_per_app()
            .into_iter()
            .map(|(a, idxs)| (a, idxs.iter().map(|&i| means[i]).sum()))
            .collect();
        for w in heavy.windows(2) {
            assert!(totals[&w[0]] >= totals[&w[1]]);
        }
    }

    #[test]
    fn deterministic_datasets() {
        let (a, _) = TraceDataset::generate_nep(9, 20, 10, small_cfg());
        let (b, _) = TraceDataset::generate_nep(9, 20, 10, small_cfg());
        assert_eq!(a.records, b.records);
        assert_eq!(a.series[0], b.series[0]);
    }

    #[test]
    fn worker_count_never_changes_datasets_or_metrics() {
        use edgescope_obs as obs;
        let run_nep = |jobs: usize| {
            obs::scoped(|| TraceDataset::generate_nep_jobs(10, 20, 10, small_cfg(), jobs))
        };
        let ((serial, _), serial_metrics) = run_nep(1);
        for jobs in [2, 4] {
            let ((parallel, _), parallel_metrics) = run_nep(jobs);
            assert_eq!(serial.records, parallel.records, "records at jobs {jobs}");
            assert_eq!(serial.series, parallel.series, "series at jobs {jobs}");
            assert_eq!(serial_metrics, parallel_metrics, "metrics at jobs {jobs}");
        }
        let az1 = TraceDataset::generate_azure_jobs(11, 5, 20, small_cfg(), 1);
        let az4 = TraceDataset::generate_azure_jobs(11, 5, 20, small_cfg(), 4);
        assert_eq!(az1.records, az4.records);
        assert_eq!(az1.series, az4.series);
    }
}
