//! Generate, inspect, and validate EdgeScope trace artefacts — the
//! release tooling a public dataset (the paper promises one) would ship
//! with.
//!
//! ```text
//! trace-tool generate --flavor nep|azure --apps N --days D --seed S --out DIR
//! trace-tool inspect  DIR        # summarize vm_table.tsv + series.bin
//! trace-tool validate DIR        # parse + invariant checks; exit 1 on failure
//! ```

use edgescope_trace::dataset::TraceDataset;
use edgescope_trace::io::{series_from_bytes, series_to_bytes, vm_table_from_tsv, vm_table_to_tsv};
use edgescope_trace::series::TraceConfig;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace-tool generate [--flavor nep|azure] [--apps N] [--days D] [--seed S] [--out DIR]\n  trace-tool inspect DIR\n  trace-tool validate DIR"
    );
    ExitCode::from(2)
}

struct Flags {
    flavor: String,
    apps: usize,
    days: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        flavor: "nep".into(),
        apps: 60,
        days: 14,
        seed: 42,
        out: PathBuf::from("trace_out"),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = || it.next().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--flavor" => f.flavor = take()?.clone(),
            "--apps" => f.apps = take()?.parse().map_err(|e| format!("--apps: {e}"))?,
            "--days" => f.days = take()?.parse().map_err(|e| format!("--days: {e}"))?,
            "--seed" => f.seed = take()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => f.out = PathBuf::from(take()?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if f.flavor != "nep" && f.flavor != "azure" {
        return Err(format!("unknown flavor {}", f.flavor));
    }
    if f.apps == 0 || f.days == 0 {
        return Err("--apps and --days must be positive".into());
    }
    Ok(f)
}

fn generate(f: &Flags) -> Result<(), String> {
    let cfg = TraceConfig {
        days: f.days,
        cpu_interval_min: 5,
        bw_interval_min: 15,
        start_weekday: 0,
    };
    let ds = if f.flavor == "nep" {
        TraceDataset::generate_nep(f.seed, 50, f.apps, cfg).0
    } else {
        TraceDataset::generate_azure(f.seed, 10, f.apps, cfg)
    };
    std::fs::create_dir_all(&f.out).map_err(|e| e.to_string())?;
    let tsv = vm_table_to_tsv(&ds.records);
    std::fs::write(f.out.join("vm_table.tsv"), &tsv).map_err(|e| e.to_string())?;
    let bin = series_to_bytes(&ds.series);
    std::fs::write(f.out.join("series.bin"), &bin).map_err(|e| e.to_string())?;
    println!(
        "generated {} trace: {} VMs, {} days -> {} ({} KB tsv, {} MB series)",
        f.flavor,
        ds.n_vms(),
        f.days,
        f.out.display(),
        tsv.len() / 1024,
        bin.len() / (1024 * 1024)
    );
    Ok(())
}

fn load(dir: &Path) -> Result<(Vec<edgescope_trace::population::VmRecord>, Vec<edgescope_trace::dataset::VmSeries>), String> {
    let tsv = std::fs::read_to_string(dir.join("vm_table.tsv"))
        .map_err(|e| format!("vm_table.tsv: {e}"))?;
    let records = vm_table_from_tsv(&tsv).map_err(|e| e.to_string())?;
    let raw = std::fs::read(dir.join("series.bin")).map_err(|e| format!("series.bin: {e}"))?;
    let series = series_from_bytes(raw.into()).map_err(|e| e.to_string())?;
    Ok((records, series))
}

fn inspect(dir: &Path) -> Result<(), String> {
    let (records, series) = load(dir)?;
    println!("{}: {} VMs", dir.display(), records.len());
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let cores: Vec<f64> = records.iter().map(|r| r.cores as f64).collect();
    let mems: Vec<f64> = records.iter().map(|r| r.mem_gb as f64).collect();
    println!("  median vCPU {:.0}, median memory {:.0} GB", median(cores), median(mems));
    let mut apps: Vec<u32> = records.iter().map(|r| r.app.0).collect();
    apps.sort_unstable();
    apps.dedup();
    println!("  {} apps; categories:", apps.len());
    let mut by_cat: std::collections::BTreeMap<&str, usize> = Default::default();
    for r in &records {
        *by_cat.entry(r.category.label()).or_default() += 1;
    }
    for (cat, n) in by_cat {
        println!("    {cat:<20} {n}");
    }
    if let Some(s) = series.first() {
        println!(
            "  series: {} cpu samples, {} bw samples per VM",
            s.cpu_util_pct.len(),
            s.bw_mbps.len()
        );
    }
    let means: Vec<f64> = series
        .iter()
        .map(|s| s.cpu_util_pct.iter().map(|&v| v as f64).sum::<f64>() / s.cpu_util_pct.len().max(1) as f64)
        .collect();
    let idle = means.iter().filter(|&&m| m < 10.0).count();
    println!(
        "  mean CPU {:.1}% across VMs; {} of {} under 10%",
        means.iter().sum::<f64>() / means.len().max(1) as f64,
        idle,
        means.len()
    );
    Ok(())
}

fn validate(dir: &Path) -> Result<(), String> {
    let (records, series) = load(dir)?;
    let violations = edgescope_trace::validate::validate(&records, &series);
    if violations.is_empty() {
        println!("ok: {} VMs, all invariants hold", records.len());
        Ok(())
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        Err(format!("{} invariant violations", violations.len()))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let result = match cmd.as_str() {
        "generate" => parse_flags(&args[1..]).and_then(|f| generate(&f)),
        "inspect" => match args.get(1) {
            Some(dir) => inspect(Path::new(dir)),
            None => return usage(),
        },
        "validate" => match args.get(1) {
            Some(dir) => validate(Path::new(dir)),
            None => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
