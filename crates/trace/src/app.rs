//! Application categories and their temporal shapes.
//!
//! §4.1 lists NEP's dominant customers: "video live streaming, online
//! education, content delivery, video/audio communication, video
//! surveillance, and cloud gaming" — network-intensive and delay-critical.
//! Cloud platforms additionally host generic web services, dev/test boxes,
//! batch compute, and databases (the Azure dataset's long tail of small,
//! steady VMs).
//!
//! Each category carries a diurnal activity profile (when its users are
//! active), a weekend factor, a bandwidth intensity class, and a
//! "burstiness" used by the series generator.

use rand::Rng;

/// Application categories across both platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppCategory {
    /// Live video streaming.
    LiveStreaming,
    /// Online education (morning-peaked, 4.5's example).
    OnlineEducation,
    /// CDN-style content delivery.
    ContentDelivery,
    /// Video/audio communication.
    VideoConference,
    /// Around-the-clock camera streams.
    VideoSurveillance,
    /// Cloud gaming backends.
    CloudGaming,
    /// Generic web services (cloud-typical).
    WebService,
    /// Development/test boxes.
    DevTest,
    /// Batch compute jobs.
    BatchCompute,
    /// Databases.
    Database,
}

impl AppCategory {
    /// Categories hosted on NEP, with sampling weights (§4.1's "most
    /// popular ones", video-centric).
    pub const EDGE_MIX: &'static [(AppCategory, f64)] = &[
        (AppCategory::LiveStreaming, 0.28),
        (AppCategory::ContentDelivery, 0.22),
        (AppCategory::OnlineEducation, 0.14),
        (AppCategory::VideoConference, 0.13),
        (AppCategory::VideoSurveillance, 0.12),
        (AppCategory::CloudGaming, 0.11),
    ];

    /// Categories hosted on the Azure-like cloud, with weights: a long tail
    /// of small web/dev/batch VMs plus some video workloads.
    pub const CLOUD_MIX: &'static [(AppCategory, f64)] = &[
        (AppCategory::WebService, 0.34),
        (AppCategory::DevTest, 0.22),
        (AppCategory::BatchCompute, 0.16),
        (AppCategory::Database, 0.14),
        (AppCategory::ContentDelivery, 0.07),
        (AppCategory::LiveStreaming, 0.04),
        (AppCategory::VideoConference, 0.03),
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            AppCategory::LiveStreaming => "live-streaming",
            AppCategory::OnlineEducation => "online-education",
            AppCategory::ContentDelivery => "content-delivery",
            AppCategory::VideoConference => "video-conference",
            AppCategory::VideoSurveillance => "video-surveillance",
            AppCategory::CloudGaming => "cloud-gaming",
            AppCategory::WebService => "web-service",
            AppCategory::DevTest => "dev-test",
            AppCategory::BatchCompute => "batch-compute",
            AppCategory::Database => "database",
        }
    }

    /// Draw a category from a weighted mix.
    pub fn sample(rng: &mut impl Rng, mix: &[(AppCategory, f64)]) -> AppCategory {
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        let mut t = rng.gen::<f64>() * total;
        for (cat, w) in mix {
            t -= w;
            if t <= 0.0 {
                return *cat;
            }
        }
        mix.last().expect("empty mix").0
    }

    /// Diurnal activity at hour-of-day `h` (0–23, fractional allowed), in
    /// `[0, 1]`. 1 = the category's peak hour, small values = its trough.
    pub fn diurnal(&self, h: f64) -> f64 {
        // Smooth bump centred at `peak` with half-width `width` hours, on a
        // `floor` baseline.
        fn bump(h: f64, peak: f64, width: f64, floor: f64) -> f64 {
            let mut d = (h - peak).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            let x = (1.0 - (d / width).powi(2)).max(0.0);
            floor + (1.0 - floor) * x * x
        }
        match self {
            // Evening entertainment peak.
            AppCategory::LiveStreaming => bump(h, 21.0, 7.0, 0.08),
            // §4.5's worked example: an education app with most traffic
            // 9:00–12:00.
            AppCategory::OnlineEducation => bump(h, 10.5, 3.0, 0.03),
            AppCategory::ContentDelivery => bump(h, 20.5, 8.0, 0.15),
            // Business-hours double hump approximated by one wide bump.
            AppCategory::VideoConference => bump(h, 14.0, 5.5, 0.05),
            // Cameras stream around the clock.
            AppCategory::VideoSurveillance => bump(h, 12.0, 24.0, 0.85),
            AppCategory::CloudGaming => bump(h, 21.5, 5.5, 0.06),
            AppCategory::WebService => bump(h, 15.0, 9.0, 0.35),
            // Dev boxes follow office hours loosely.
            AppCategory::DevTest => bump(h, 14.5, 6.0, 0.25),
            // Batch jobs run at night but irregularly (low amplitude here;
            // the series generator adds heavy noise for this category).
            AppCategory::BatchCompute => bump(h, 3.0, 8.0, 0.45),
            AppCategory::Database => bump(h, 15.0, 9.0, 0.45),
        }
    }

    /// Weekend activity multiplier.
    pub fn weekend_factor(&self) -> f64 {
        match self {
            AppCategory::LiveStreaming | AppCategory::CloudGaming => 1.25,
            AppCategory::ContentDelivery => 1.1,
            AppCategory::OnlineEducation | AppCategory::VideoConference => 0.45,
            AppCategory::VideoSurveillance => 1.0,
            AppCategory::WebService | AppCategory::Database => 0.8,
            AppCategory::DevTest | AppCategory::BatchCompute => 0.55,
        }
    }

    /// Relative bandwidth intensity: mean subscribed/used Mbps per vCPU.
    /// Video categories dominate (§4.5: bandwidth is 76 % of edge bills).
    pub fn bandwidth_intensity(&self) -> f64 {
        match self {
            AppCategory::LiveStreaming => 14.0,
            AppCategory::ContentDelivery => 18.0,
            AppCategory::OnlineEducation => 8.0,
            AppCategory::VideoConference => 7.0,
            AppCategory::VideoSurveillance => 10.0,
            AppCategory::CloudGaming => 6.0,
            AppCategory::WebService => 1.2,
            AppCategory::DevTest => 0.2,
            AppCategory::BatchCompute => 0.4,
            AppCategory::Database => 0.8,
        }
    }

    /// Whether this category's usage is driven by human activity (drives
    /// diurnal amplitude and thus CV/seasonality, §4.2/§4.4).
    pub fn interactive(&self) -> bool {
        !matches!(
            self,
            AppCategory::BatchCompute | AppCategory::VideoSurveillance | AppCategory::Database
        )
    }
}

impl std::fmt::Display for AppCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diurnal_bounded() {
        for (cat, _) in AppCategory::EDGE_MIX.iter().chain(AppCategory::CLOUD_MIX) {
            for h in 0..24 {
                let v = cat.diurnal(h as f64);
                assert!((0.0..=1.0 + 1e-9).contains(&v), "{cat} at {h}: {v}");
            }
        }
    }

    #[test]
    fn education_peaks_in_the_morning() {
        let c = AppCategory::OnlineEducation;
        assert!(c.diurnal(10.5) > 0.95);
        assert!(c.diurnal(22.0) < 0.1);
        assert!(c.diurnal(10.5) / c.diurnal(16.0).max(1e-6) > 5.0);
    }

    #[test]
    fn streaming_peaks_in_the_evening() {
        let c = AppCategory::LiveStreaming;
        assert!(c.diurnal(21.0) > 0.9);
        assert!(c.diurnal(5.0) < 0.3);
    }

    #[test]
    fn surveillance_nearly_flat() {
        let c = AppCategory::VideoSurveillance;
        let vals: Vec<f64> = (0..24).map(|h| c.diurnal(h as f64)).collect();
        let max = edgescope_analysis::stats::peak_max(&vals);
        let min = edgescope_analysis::stats::peak_min(&vals);
        assert!(max / min < 1.3, "surveillance swing {max}/{min}");
    }

    #[test]
    fn diurnal_wraps_midnight() {
        // The evening bump must continue smoothly past midnight.
        let c = AppCategory::LiveStreaming;
        assert!(c.diurnal(23.9) > c.diurnal(12.0));
        assert!((c.diurnal(0.0) - c.diurnal(24.0)).abs() < 1e-9);
    }

    #[test]
    fn sample_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| {
                AppCategory::sample(&mut rng, AppCategory::EDGE_MIX)
                    == AppCategory::LiveStreaming
            })
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.28).abs() < 0.02, "live-streaming frac {frac}");
    }

    #[test]
    fn video_categories_dominate_bandwidth() {
        assert!(
            AppCategory::LiveStreaming.bandwidth_intensity()
                > 8.0 * AppCategory::WebService.bandwidth_intensity()
        );
    }
}
