//! Trace-artefact invariant checks.
//!
//! A released dataset needs a validator (the Azure dataset ships one as a
//! schema document; we ship executable checks). Used by `trace-tool
//! validate` and by downstream loaders that want to fail fast on corrupt
//! artefacts.

use crate::dataset::VmSeries;
use crate::population::VmRecord;

/// A violated invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// VM table and series have different lengths.
    /// VM table and series have different lengths.
    RowCountMismatch {
        /// Rows in the VM table.
        records: usize,
        /// Entries in the series file.
        series: usize,
    },
    /// A VM id appears twice.
    DuplicateVmId(u32),
    /// A CPU sample is outside `[0, 100]` or non-finite.
    /// A CPU sample is outside `[0, 100]` or non-finite.
    CpuOutOfRange {
        /// Index of the offending VM.
        vm_index: usize,
    },
    /// A bandwidth sample is negative or non-finite.
    /// A bandwidth sample is negative or non-finite.
    BadBandwidth {
        /// Index of the offending VM.
        vm_index: usize,
    },
    /// A VM subscribes zero cores or memory.
    EmptyResources(u32),
    /// `image_id` does not equal the app id (§2's app definition).
    ImageAppMismatch(u32),
    /// Two series have different lengths (all VMs share one config).
    /// Two series have different lengths (all VMs share one config).
    RaggedSeries {
        /// Index of the offending VM.
        vm_index: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::RowCountMismatch { records, series } => {
                write!(f, "{records} VM rows vs {series} series")
            }
            Violation::DuplicateVmId(id) => write!(f, "duplicate VM id {id}"),
            Violation::CpuOutOfRange { vm_index } => {
                write!(f, "VM #{vm_index}: CPU sample out of [0,100]")
            }
            Violation::BadBandwidth { vm_index } => {
                write!(f, "VM #{vm_index}: invalid bandwidth sample")
            }
            Violation::EmptyResources(id) => write!(f, "VM {id} has empty resources"),
            Violation::ImageAppMismatch(id) => write!(f, "VM {id} image/app mismatch"),
            Violation::RaggedSeries { vm_index } => {
                write!(f, "VM #{vm_index}: series length differs from VM #0")
            }
        }
    }
}

/// Check every invariant; returns all violations found (empty = valid).
pub fn validate(records: &[VmRecord], series: &[VmSeries]) -> Vec<Violation> {
    let mut out = Vec::new();
    if records.len() != series.len() {
        out.push(Violation::RowCountMismatch { records: records.len(), series: series.len() });
    }
    let mut ids: Vec<u32> = records.iter().map(|r| r.vm.0).collect();
    ids.sort_unstable();
    for w in ids.windows(2) {
        if w[0] == w[1] {
            out.push(Violation::DuplicateVmId(w[0]));
        }
    }
    for (i, s) in series.iter().enumerate() {
        if s.cpu_util_pct.iter().any(|v| !(0.0..=100.0).contains(v) || !v.is_finite()) {
            out.push(Violation::CpuOutOfRange { vm_index: i });
        }
        if s.bw_mbps.iter().any(|v| *v < 0.0 || !v.is_finite()) {
            out.push(Violation::BadBandwidth { vm_index: i });
        }
        if let Some(first) = series.first() {
            if s.cpu_util_pct.len() != first.cpu_util_pct.len()
                || s.bw_mbps.len() != first.bw_mbps.len()
            {
                out.push(Violation::RaggedSeries { vm_index: i });
            }
        }
    }
    for r in records {
        if r.cores == 0 || r.mem_gb == 0 {
            out.push(Violation::EmptyResources(r.vm.0));
        }
        if r.image_id != r.app.0 {
            out.push(Violation::ImageAppMismatch(r.vm.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TraceDataset;
    use crate::series::TraceConfig;

    fn tiny() -> TraceDataset {
        let cfg = TraceConfig { days: 1, cpu_interval_min: 60, bw_interval_min: 120, start_weekday: 0 };
        TraceDataset::generate_azure(3, 2, 5, cfg)
    }

    #[test]
    fn generated_traces_valid() {
        let ds = tiny();
        assert!(validate(&ds.records, &ds.series).is_empty());
    }

    #[test]
    fn detects_duplicate_ids() {
        let mut ds = tiny();
        let id = ds.records[0].vm;
        ds.records[1].vm = id;
        let v = validate(&ds.records, &ds.series);
        assert!(v.iter().any(|x| matches!(x, Violation::DuplicateVmId(_))), "{v:?}");
    }

    #[test]
    fn detects_bad_samples() {
        let mut ds = tiny();
        ds.series[0].cpu_util_pct[0] = 150.0;
        ds.series[1].bw_mbps[0] = -1.0;
        let v = validate(&ds.records, &ds.series);
        assert!(v.contains(&Violation::CpuOutOfRange { vm_index: 0 }));
        assert!(v.contains(&Violation::BadBandwidth { vm_index: 1 }));
    }

    #[test]
    fn detects_structural_problems() {
        let mut ds = tiny();
        ds.records[0].image_id += 1;
        ds.series[2].cpu_util_pct.pop();
        let short = &ds.series[..ds.series.len() - 1];
        let v = validate(&ds.records, short);
        assert!(v.iter().any(|x| matches!(x, Violation::RowCountMismatch { .. })));
        assert!(v.iter().any(|x| matches!(x, Violation::ImageAppMismatch(_))));
        assert!(v.iter().any(|x| matches!(x, Violation::RaggedSeries { .. })));
        // Display is human-readable.
        assert!(v[0].to_string().len() > 5);
    }
}
