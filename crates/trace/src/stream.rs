//! Streaming (metro-scale) trace statistics.
//!
//! A paper-scale [`TraceDataset`](crate::dataset::TraceDataset) holds
//! every VM's full CPU/bandwidth series — at metro scale (tens of
//! thousands of VM series over 30 days at 5-minute resolution) that is
//! gigabytes. [`StreamingTraceStats`] synthesizes each VM's series from
//! its own RNG stream, computes the per-VM statistics the Fig. 10
//! distributions need with the *exact* formulas of the batch accessors
//! (`mean_cpu_per_vm`, `p95_cpu_per_vm`, `cpu_cv_per_vm`,
//! `mean_bw_per_vm`), folds them into mergeable
//! [`PercentileSketch`]es, and drops the series — one VM's series is the
//! only one alive per worker at any time.
//!
//! ## Determinism contract
//! VM table and app table come from the same serial draws as the batch
//! generators (shared helpers in `dataset`), and VM `i`'s series is a
//! function of `(seed, i)` alone. VMs are folded in fixed-size chunks
//! (a constant, never derived from the worker count) and chunk
//! accumulators merge in chunk order, so results are byte-identical for
//! every `jobs` value. Sketch merges are integer-exact; chunking is
//! invisible to them entirely.

use crate::dataset::{app_table, vm_series_for};
use crate::flavor::{Flavor, FlavorParams};
use crate::pool::fan_out;
use crate::population::{generate_cloud, generate_nep, VmRecord};
use crate::series::TraceConfig;
use edgescope_analysis::sketch::PercentileSketch;
use edgescope_platform::deployment::Deployment;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// VMs folded per chunk accumulator. A constant so chunk boundaries
/// never depend on `jobs`.
const VM_CHUNK: usize = 1024;

/// Relative accuracy of the per-VM statistic sketches.
const SKETCH_ALPHA: f64 = 0.01;

fn cpu_sketch() -> PercentileSketch {
    // CPU percent: exact zeros go to the sketch's zero bucket.
    PercentileSketch::new(SKETCH_ALPHA, 0.01, 100.0)
}

fn cv_sketch() -> PercentileSketch {
    PercentileSketch::new(SKETCH_ALPHA, 1e-3, 100.0)
}

fn bw_sketch() -> PercentileSketch {
    PercentileSketch::new(SKETCH_ALPHA, 1e-3, 100_000.0)
}

/// Sketched per-VM statistics of one platform's trace — the streaming
/// analogue of the Fig. 10 accessor vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingTraceStats {
    /// Which platform this trace models.
    pub flavor: Flavor,
    /// Sampling configuration the series were synthesized under.
    pub config: TraceConfig,
    /// VMs folded in.
    pub n_vms: u64,
    /// Sketch over per-VM mean CPU utilization (percent).
    pub mean_cpu: PercentileSketch,
    /// Sketch over per-VM 95th-percentile CPU (Fig. 10a "P95 Max").
    pub p95_cpu: PercentileSketch,
    /// Sketch over per-VM across-time CPU CV (Fig. 10b).
    pub cpu_cv: PercentileSketch,
    /// Sketch over per-VM mean bandwidth (Mbps).
    pub mean_bw: PercentileSketch,
}

impl StreamingTraceStats {
    fn empty(flavor: Flavor, config: TraceConfig) -> Self {
        StreamingTraceStats {
            flavor,
            config,
            n_vms: 0,
            mean_cpu: cpu_sketch(),
            p95_cpu: cpu_sketch(),
            cpu_cv: cv_sketch(),
            mean_bw: bw_sketch(),
        }
    }

    fn merge(&mut self, other: &StreamingTraceStats) {
        self.n_vms += other.n_vms;
        self.mean_cpu.merge(&other.mean_cpu);
        self.p95_cpu.merge(&other.p95_cpu);
        self.cpu_cv.merge(&other.cpu_cv);
        self.mean_bw.merge(&other.mean_bw);
    }
}

// Per-VM statistics, formula-for-formula the batch accessors of
// `TraceDataset` applied to one series.

fn mean_of(xs: &[f32]) -> f64 {
    xs.iter().map(|&v| v as f64).sum::<f64>() / xs.len().max(1) as f64
}

fn p95_of(xs: &[f32]) -> f64 {
    debug_assert!(!xs.is_empty(), "series are never empty");
    let mut v: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
    v.sort_by(f64::total_cmp);
    let rank = 0.95 * (v.len() - 1) as f64;
    v[rank.round() as usize]
}

fn cv_of(xs: &[f32]) -> f64 {
    let m = mean_of(xs);
    if m == 0.0 {
        return 0.0;
    }
    let var = xs
        .iter()
        .map(|&x| (x as f64 - m) * (x as f64 - m))
        .sum::<f64>()
        / xs.len() as f64;
    var.sqrt() / m
}

fn stream_stats(
    seed: u64,
    flavor: Flavor,
    params: &FlavorParams,
    records: &[VmRecord],
    config: &TraceConfig,
    jobs: usize,
    chunk: usize,
) -> StreamingTraceStats {
    assert!(chunk > 0, "chunk size must be positive");
    let app_base = app_table(seed, params, records);
    let chunks = records.len().div_ceil(chunk);
    let per_chunk = fan_out(chunks, jobs, |c| {
        let mut acc = StreamingTraceStats::empty(flavor, config.clone());
        let mut cpu_samples = 0u64;
        let mut bw_samples = 0u64;
        let hi = ((c + 1) * chunk).min(records.len());
        for (i, r) in records.iter().enumerate().take(hi).skip(c * chunk) {
            let s = vm_series_for(seed, params, r, app_base[&r.app], i, config);
            acc.mean_cpu.add(mean_of(&s.cpu_util_pct));
            acc.p95_cpu.add(p95_of(&s.cpu_util_pct));
            acc.cpu_cv.add(cv_of(&s.cpu_util_pct));
            acc.mean_bw.add(mean_of(&s.bw_mbps));
            acc.n_vms += 1;
            cpu_samples += s.cpu_util_pct.len() as u64;
            bw_samples += s.bw_mbps.len() as u64;
        }
        (acc, cpu_samples, bw_samples)
    });
    let mut out = StreamingTraceStats::empty(flavor, config.clone());
    let mut cpu_total = 0u64;
    let mut bw_total = 0u64;
    for (acc, cpu, bw) in &per_chunk {
        out.merge(acc);
        cpu_total += cpu;
        bw_total += bw;
    }
    // Same counters, same once-on-the-caller recording discipline as the
    // batch generator — totals are order-free.
    edgescope_obs::counter_add("trace.vms_generated", out.n_vms);
    edgescope_obs::counter_add("trace.cpu_samples", cpu_total);
    edgescope_obs::counter_add("trace.bw_samples", bw_total);
    out
}

/// Streaming analogue of
/// [`TraceDataset::generate_nep_jobs`](crate::dataset::TraceDataset::generate_nep_jobs):
/// same deployment, placement, VM table, and per-VM draws, but only the
/// sketched per-VM statistics are retained.
pub fn stream_nep_stats_jobs(
    seed: u64,
    n_sites: usize,
    n_apps: usize,
    config: TraceConfig,
    jobs: usize,
) -> (StreamingTraceStats, Deployment) {
    let params = FlavorParams::edge_nep();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut deployment = Deployment::nep_custom(&mut rng, n_sites, 10, 40);
    let records = generate_nep(&mut rng, &params, &mut deployment, n_apps);
    let stats = stream_stats(seed, Flavor::EdgeNep, &params, &records, &config, jobs, VM_CHUNK);
    (stats, deployment)
}

/// Streaming analogue of
/// [`TraceDataset::generate_azure_jobs`](crate::dataset::TraceDataset::generate_azure_jobs).
pub fn stream_azure_stats_jobs(
    seed: u64,
    n_regions: u32,
    n_apps: usize,
    config: TraceConfig,
    jobs: usize,
) -> StreamingTraceStats {
    let params = FlavorParams::cloud_azure();
    let mut rng = StdRng::seed_from_u64(seed);
    let records = generate_cloud(&mut rng, &params, n_regions, n_apps);
    stream_stats(seed, Flavor::CloudAzure, &params, &records, &config, jobs, VM_CHUNK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TraceDataset;
    use edgescope_obs as obs;

    fn small_cfg() -> TraceConfig {
        TraceConfig { days: 7, cpu_interval_min: 10, bw_interval_min: 30, start_weekday: 0 }
    }

    fn exact_median(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(f64::total_cmp);
        edgescope_analysis::stats::median(&xs)
    }

    #[test]
    fn streaming_stats_match_batch_dataset() {
        let (ds, dep_batch) = TraceDataset::generate_nep(1, 20, 15, small_cfg());
        let (st, dep_stream) = stream_nep_stats_jobs(1, 20, 15, small_cfg(), 2);
        assert_eq!(dep_batch.n_sites(), dep_stream.n_sites());
        assert_eq!(st.n_vms as usize, ds.n_vms());
        assert_eq!(st.mean_cpu.count(), st.n_vms);
        // Sketch medians within the sketch's relative accuracy of the
        // exact per-VM statistic medians.
        let close = |sketch: &PercentileSketch, exact: Vec<f64>, what: &str| {
            let e = exact_median(exact);
            let s = sketch.median();
            assert!((s - e).abs() <= SKETCH_ALPHA * e.abs() + 1e-9, "{what}: {s} vs {e}");
        };
        close(&st.mean_cpu, ds.mean_cpu_per_vm(), "mean cpu");
        close(&st.p95_cpu, ds.p95_cpu_per_vm(), "p95 cpu");
        close(&st.cpu_cv, ds.cpu_cv_per_vm(), "cpu cv");
        close(&st.mean_bw, ds.mean_bw_per_vm(), "mean bw");
    }

    #[test]
    fn azure_streaming_stats_match_batch() {
        let ds = TraceDataset::generate_azure(2, 8, 30, small_cfg());
        let st = stream_azure_stats_jobs(2, 8, 30, small_cfg(), 4);
        assert_eq!(st.n_vms as usize, ds.n_vms());
        assert_eq!(st.flavor, Flavor::CloudAzure);
        let e = exact_median(ds.mean_cpu_per_vm());
        assert!((st.mean_cpu.median() - e).abs() <= SKETCH_ALPHA * e + 1e-9);
    }

    #[test]
    fn worker_and_chunk_invariance() {
        let params = FlavorParams::cloud_azure();
        let mut rng = StdRng::seed_from_u64(3);
        let records = generate_cloud(&mut rng, &params, 5, 20);
        let run = |jobs: usize, chunk: usize| {
            stream_stats(3, Flavor::CloudAzure, &params, &records, &small_cfg(), jobs, chunk)
        };
        // 7-VM chunks force multi-chunk merging even on this small table.
        let serial = run(1, 7);
        for jobs in [2, 4] {
            assert_eq!(serial, run(jobs, 7), "jobs {jobs}");
        }
        // Sketch merges are integer-exact, so even the chunk size is
        // invisible to the result.
        assert_eq!(serial, run(4, 13));
    }

    #[test]
    fn streaming_counters_match_batch() {
        let batch = obs::scoped(|| TraceDataset::generate_azure_jobs(4, 4, 12, small_cfg(), 2)).1;
        let stream = obs::scoped(|| stream_azure_stats_jobs(4, 4, 12, small_cfg(), 2)).1;
        for c in ["trace.vms_generated", "trace.cpu_samples", "trace.bw_samples"] {
            assert_eq!(stream.counter(c), batch.counter(c), "{c}");
        }
    }
}
