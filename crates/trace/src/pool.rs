//! Deterministic entity fan-out for series synthesis — the same shape as
//! the pool in `edgescope-probe` (the two substrate crates deliberately
//! do not depend on each other, so each carries its own copy of this
//! ~30-line helper).

/// Run `f(i)` for every `i in 0..n` over up to `jobs` crossbeam scoped
/// workers and collect results in index order. `f` must be
/// index-deterministic (per-entity RNG streams guarantee this), which
/// makes the output independent of the worker count. With `jobs <= 1` or
/// fewer than two entities this is a plain serial map.
pub(crate) fn fan_out<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|sc| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                sc.spawn(move |_| {
                    (w..n)
                        .step_by(workers)
                        .map(|i| (i, f(i)))
                        .collect::<Vec<(usize, T)>>()
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("series worker panicked") {
                slots[i] = Some(v);
            }
        }
    })
    .expect("series worker pool panicked");
    slots
        .into_iter()
        .map(|s| s.expect("every entity index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let serial = fan_out(23, 1, |i| i as u64 * 3);
        for jobs in [2, 4, 32] {
            assert_eq!(fan_out(23, jobs, |i| i as u64 * 3), serial, "jobs {jobs}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(fan_out(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(1, 0, |i| i + 5), vec![5]);
    }
}
