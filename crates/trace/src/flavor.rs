//! Population parameter sets: edge (NEP) vs. cloud (Azure-like).
//!
//! Every §4 contrast between NEP and Azure is encoded as a difference
//! between these two parameter sets; the generators in [`crate::population`]
//! and [`crate::series`] read them. Calibration targets are listed in the
//! crate docs.

use crate::app::AppCategory;

/// Which platform a trace models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// NEP: the measured edge platform.
    EdgeNep,
    /// The Azure-2019-like public cloud.
    CloudAzure,
}

/// How a VM's memory is derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemMode {
    /// Memory proportional to cores (NEP's flavour: 4 GB/core, so the
    /// median 8-core VM has the Fig. 8 median of 32 GB).
    PerCore(u32),
    /// Memory drawn from its own `(GB, weight)` table, independent of
    /// cores (Azure's flavour: median 4 GB, 70 % ≤ 4 GB).
    Table(&'static [(u32, f64)]),
}

/// Distribution parameters of a VM population.
#[derive(Debug, Clone)]
pub struct FlavorParams {
    /// Which platform these parameters model.
    pub flavor: Flavor,
    /// Category mix for apps.
    pub category_mix: &'static [(AppCategory, f64)],
    /// `(cores, weight)` table for VM sizes.
    pub core_weights: &'static [(u32, f64)],
    /// Memory model.
    pub mem_mode: MemMode,
    /// Bounded-Pareto shape for per-app VM counts on `[1, max_vms_per_app]`.
    pub app_vms_alpha: f64,
    /// Upper bound of the per-app VM count.
    pub max_vms_per_app: f64,
    /// Storage log-normal: median GB and sigma (NEP: median 100, mean 650
    /// ⇒ sigma ≈ 1.93).
    pub storage_median_gb: f64,
    /// Log-normal sigma of the storage size.
    pub storage_sigma: f64,
    /// Mixture for per-VM mean CPU utilization (percent): probability of
    /// the "idle" component, then (median, sigma) of idle and busy
    /// log-normal components.
    pub idle_prob: f64,
    /// Median of the idle component, percent.
    pub idle_median_pct: f64,
    /// Log-normal sigma of the idle component.
    pub idle_sigma: f64,
    /// Median of the busy component, percent.
    pub busy_median_pct: f64,
    /// Log-normal sigma of the busy component.
    pub busy_sigma: f64,
    /// Within-app spread of per-VM mean utilization: log-normal parameters
    /// of the per-app sigma (drives Fig. 13a's gap CDF).
    pub within_app_sigma_median: f64,
    /// Spread (log-sigma) of the per-app sigma draw.
    pub within_app_sigma_spread: f64,
    /// Diurnal amplitude range `[lo, hi]` for interactive apps (drives CV
    /// and seasonality, Fig. 10b / §4.4).
    pub diurnal_amp: (f64, f64),
    /// Per-sample multiplicative noise CV of the CPU series.
    pub cpu_noise_cv: f64,
    /// Per-day amplitude jitter (CV of a daily multiplier on the diurnal
    /// swing) — day-to-day irregularity that caps seasonal strength at the
    /// paper's 0.42/0.26 levels instead of a metronomic 0.9+.
    pub day_amp_cv: f64,
    /// Probability a VM's bandwidth level drifts week over week (Fig. 12's
    /// erratic VMs).
    pub bw_drift_prob: f64,
    /// Weekly drift sigma (log-scale random walk).
    pub bw_drift_sigma: f64,
}

impl FlavorParams {
    /// NEP calibration.
    pub fn edge_nep() -> Self {
        FlavorParams {
            flavor: Flavor::EdgeNep,
            category_mix: AppCategory::EDGE_MIX,
            // Median 8 cores; ≈30 % ≤4 ("small"), ≈14 % >16 ("large").
            core_weights: &[(2, 0.06), (4, 0.24), (8, 0.34), (16, 0.22), (32, 0.10), (64, 0.04)],
            mem_mode: MemMode::PerCore(4),
            // ≈9.6 % of apps at ≥50 VMs, max ≈1000 (Fig. 9).
            app_vms_alpha: 0.55,
            max_vms_per_app: 1000.0,
            storage_median_gb: 100.0,
            storage_sigma: 1.93,
            // ≈74 % of VMs under 10 % mean CPU; busy tail modest.
            idle_prob: 0.74,
            idle_median_pct: 3.0,
            idle_sigma: 0.75,
            busy_median_pct: 14.0,
            busy_sigma: 0.70,
            // 16.3 % of apps with >50× cross-VM gap.
            within_app_sigma_median: 0.74,
            within_app_sigma_spread: 0.685,
            // Strong human-driven diurnality: CV median ≈0.48, seasonality
            // ≈0.42.
            diurnal_amp: (0.5, 0.95),
            cpu_noise_cv: 0.20,
            day_amp_cv: 0.55,
            bw_drift_prob: 0.35,
            bw_drift_sigma: 0.45,
        }
    }

    /// Azure-2019 calibration.
    pub fn cloud_azure() -> Self {
        FlavorParams {
            flavor: Flavor::CloudAzure,
            category_mix: AppCategory::CLOUD_MIX,
            // Median 1 core, 90 % ≤4 (Fig. 8).
            core_weights: &[(1, 0.52), (2, 0.25), (4, 0.13), (8, 0.07), (16, 0.025), (32, 0.005)],
            // Median 4 GB, 70 % ≤ 4 GB (Fig. 8).
            mem_mode: MemMode::Table(&[(1, 0.08), (2, 0.17), (4, 0.45), (8, 0.17), (16, 0.08), (32, 0.04), (64, 0.01)]),
            app_vms_alpha: 0.70,
            max_vms_per_app: 1000.0,
            storage_median_gb: 64.0,
            storage_sigma: 1.2,
            // ≈47 % under 10 %; busy tail heavy (clouds run hot).
            idle_prob: 0.47,
            idle_median_pct: 3.5,
            idle_sigma: 0.75,
            busy_median_pct: 38.0,
            busy_sigma: 0.65,
            // Only ≈0.1 % of apps with >50× gap.
            within_app_sigma_median: 0.25,
            within_app_sigma_spread: 0.50,
            // Weak diurnality: CV median ≈0.24, seasonality ≈0.26.
            diurnal_amp: (0.12, 0.38),
            cpu_noise_cv: 0.16,
            day_amp_cv: 0.35,
            bw_drift_prob: 0.15,
            bw_drift_sigma: 0.25,
        }
    }

    /// The parameter set for a flavor.
    pub fn for_flavor(flavor: Flavor) -> Self {
        match flavor {
            Flavor::EdgeNep => Self::edge_nep(),
            Flavor::CloudAzure => Self::cloud_azure(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_median(weights: &[(u32, f64)]) -> u32 {
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        let mut acc = 0.0;
        for (v, w) in weights {
            acc += w;
            if acc >= total / 2.0 {
                return *v;
            }
        }
        weights.last().unwrap().0
    }

    #[test]
    fn core_medians_match_fig8() {
        assert_eq!(weighted_median(FlavorParams::edge_nep().core_weights), 8);
        assert_eq!(weighted_median(FlavorParams::cloud_azure().core_weights), 1);
    }

    #[test]
    fn azure_small_vm_share() {
        // 90 % of Azure VMs have ≤4 vCPUs.
        let w = FlavorParams::cloud_azure().core_weights;
        let le4: f64 = w.iter().filter(|(c, _)| *c <= 4).map(|(_, w)| w).sum();
        assert!((le4 - 0.90).abs() < 0.01, "≤4-core share {le4}");
    }

    #[test]
    fn weights_normalized() {
        for p in [FlavorParams::edge_nep(), FlavorParams::cloud_azure()] {
            let sum: f64 = p.core_weights.iter().map(|(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{:?} core weights {sum}", p.flavor);
        }
    }

    #[test]
    fn nep_memory_richer() {
        let nep = FlavorParams::edge_nep();
        // median 8 cores × 4 GB/core = 32 GB, the Fig. 8 median.
        match nep.mem_mode {
            MemMode::PerCore(per) => assert_eq!(8 * per, 32),
            _ => panic!("NEP uses per-core memory"),
        }
    }

    #[test]
    fn azure_memory_table_matches_fig8() {
        match FlavorParams::cloud_azure().mem_mode {
            MemMode::Table(t) => {
                let total: f64 = t.iter().map(|(_, w)| w).sum();
                assert!((total - 1.0).abs() < 1e-9);
                let le4: f64 = t.iter().filter(|(g, _)| *g <= 4).map(|(_, w)| w).sum();
                assert!((le4 - 0.70).abs() < 0.02, "≤4 GB share {le4}");
                assert_eq!(weighted_median(t), 4);
            }
            _ => panic!("Azure uses a memory table"),
        }
    }

    #[test]
    fn storage_mean_over_median_ratio() {
        // log-normal mean/median = exp(σ²/2); NEP target 650/100 = 6.5.
        let p = FlavorParams::edge_nep();
        let ratio = (p.storage_sigma * p.storage_sigma / 2.0).exp();
        assert!((ratio - 6.5).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn edge_more_idle_and_more_diurnal() {
        let e = FlavorParams::edge_nep();
        let c = FlavorParams::cloud_azure();
        assert!(e.idle_prob > c.idle_prob);
        assert!(e.diurnal_amp.0 > c.diurnal_amp.1 / 2.0);
        assert!(e.within_app_sigma_median > c.within_app_sigma_median);
    }
}
