//! Trace (de)serialization.
//!
//! Two artefact formats, mirroring how such traces are published (the
//! Azure dataset ships as CSV; series data as packed binaries):
//!
//! * **VM table** — TSV with a fixed header, one row per VM;
//! * **series** — a length-prefixed little-endian binary built with
//!   [`bytes`]: magic, VM count, then per VM the CPU and bandwidth vectors
//!   as `f32`s.
//!
//! Round-tripping is exact for the VM table and bit-exact for the `f32`
//! series.

use crate::app::AppCategory;
use crate::population::VmRecord;
use crate::dataset::VmSeries;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use edgescope_platform::ids::{AppId, CustomerId, ServerId, SiteId, VmId};

/// Magic header of the binary series format.
pub const SERIES_MAGIC: u32 = 0x4553_5452; // "ESTR"

/// Errors from parsing trace artefacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Header mismatch or truncated input.
    Malformed(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(m) => write!(f, "malformed trace artefact: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

const VM_TABLE_HEADER: &str =
    "vm\tapp\tcustomer\tcategory\tsite\tserver\tcores\tmem_gb\tdisk_gb\tbandwidth_mbps\timage_id\tos_type";

fn category_from_label(s: &str) -> Option<AppCategory> {
    use AppCategory::*;
    Some(match s {
        "live-streaming" => LiveStreaming,
        "online-education" => OnlineEducation,
        "content-delivery" => ContentDelivery,
        "video-conference" => VideoConference,
        "video-surveillance" => VideoSurveillance,
        "cloud-gaming" => CloudGaming,
        "web-service" => WebService,
        "dev-test" => DevTest,
        "batch-compute" => BatchCompute,
        "database" => Database,
        _ => return None,
    })
}

/// Serialize the VM table as TSV.
pub fn vm_table_to_tsv(records: &[VmRecord]) -> String {
    let mut out = String::with_capacity(64 * (records.len() + 1));
    out.push_str(VM_TABLE_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.vm.0, r.app.0, r.customer.0, r.category.label(), r.site.0, r.server.0,
            r.cores, r.mem_gb, r.disk_gb, r.bandwidth_mbps, r.image_id, r.os_type,
        ));
    }
    out
}

/// Parse a TSV VM table.
pub fn vm_table_from_tsv(tsv: &str) -> Result<Vec<VmRecord>, ParseError> {
    let mut lines = tsv.lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseError::Malformed("empty input".into()))?;
    if header != VM_TABLE_HEADER {
        return Err(ParseError::Malformed(format!("bad header: {header}")));
    }
    let mut out = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 12 {
            return Err(ParseError::Malformed(format!(
                "line {}: {} fields (want 12)",
                lineno + 2,
                f.len()
            )));
        }
        let err = |what: &str| ParseError::Malformed(format!("line {}: bad {what}", lineno + 2));
        out.push(VmRecord {
            vm: VmId(f[0].parse().map_err(|_| err("vm"))?),
            app: AppId(f[1].parse().map_err(|_| err("app"))?),
            customer: CustomerId(f[2].parse().map_err(|_| err("customer"))?),
            category: category_from_label(f[3]).ok_or_else(|| err("category"))?,
            site: SiteId(f[4].parse().map_err(|_| err("site"))?),
            server: ServerId(f[5].parse().map_err(|_| err("server"))?),
            cores: f[6].parse().map_err(|_| err("cores"))?,
            mem_gb: f[7].parse().map_err(|_| err("mem_gb"))?,
            disk_gb: f[8].parse().map_err(|_| err("disk_gb"))?,
            bandwidth_mbps: f[9].parse().map_err(|_| err("bandwidth"))?,
            image_id: f[10].parse().map_err(|_| err("image_id"))?,
            os_type: f[11].parse().map_err(|_| err("os_type"))?,
        });
    }
    Ok(out)
}

/// Serialize series to the binary format.
pub fn series_to_bytes(series: &[VmSeries]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(SERIES_MAGIC);
    buf.put_u32_le(series.len() as u32);
    for s in series {
        buf.put_u32_le(s.cpu_util_pct.len() as u32);
        for &v in &s.cpu_util_pct {
            buf.put_f32_le(v);
        }
        buf.put_u32_le(s.bw_mbps.len() as u32);
        for &v in &s.bw_mbps {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Parse the binary series format.
pub fn series_from_bytes(mut data: Bytes) -> Result<Vec<VmSeries>, ParseError> {
    let need = |data: &Bytes, n: usize| -> Result<(), ParseError> {
        if data.remaining() < n {
            Err(ParseError::Malformed(format!(
                "truncated: need {n} bytes, have {}",
                data.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(&data, 8)?;
    let magic = data.get_u32_le();
    if magic != SERIES_MAGIC {
        return Err(ParseError::Malformed(format!("bad magic {magic:#x}")));
    }
    let n_vms = data.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n_vms);
    for _ in 0..n_vms {
        need(&data, 4)?;
        let n_cpu = data.get_u32_le() as usize;
        need(&data, 4 * n_cpu)?;
        let cpu: Vec<f32> = (0..n_cpu).map(|_| data.get_f32_le()).collect();
        need(&data, 4)?;
        let n_bw = data.get_u32_le() as usize;
        need(&data, 4 * n_bw)?;
        let bw: Vec<f32> = (0..n_bw).map(|_| data.get_f32_le()).collect();
        out.push(VmSeries { cpu_util_pct: cpu, bw_mbps: bw });
    }
    if data.has_remaining() {
        return Err(ParseError::Malformed(format!(
            "{} trailing bytes",
            data.remaining()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TraceDataset;
    use crate::series::TraceConfig;

    fn tiny() -> TraceDataset {
        let cfg = TraceConfig { days: 2, cpu_interval_min: 30, bw_interval_min: 60, start_weekday: 0 };
        TraceDataset::generate_azure(1, 3, 8, cfg)
    }

    #[test]
    fn vm_table_roundtrip() {
        let ds = tiny();
        let tsv = vm_table_to_tsv(&ds.records);
        let parsed = vm_table_from_tsv(&tsv).expect("parse");
        assert_eq!(parsed.len(), ds.records.len());
        // Rust's shortest-roundtrip float formatting makes this exact.
        assert_eq!(parsed, ds.records);
    }

    #[test]
    fn series_roundtrip_bit_exact() {
        let ds = tiny();
        let bytes = series_to_bytes(&ds.series);
        let parsed = series_from_bytes(bytes).expect("parse");
        assert_eq!(parsed, ds.series);
    }

    #[test]
    fn bad_header_rejected() {
        let err = vm_table_from_tsv("nope\n1\t2\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_)));
    }

    #[test]
    fn bad_field_rejected() {
        let ds = tiny();
        let tsv = vm_table_to_tsv(&ds.records[..1]);
        let corrupted = tsv.replace("live-streaming", "parcheesi")
            .replace("web-service", "parcheesi")
            .replace("dev-test", "parcheesi")
            .replace("batch-compute", "parcheesi")
            .replace("database", "parcheesi")
            .replace("content-delivery", "parcheesi")
            .replace("video-conference", "parcheesi");
        assert!(vm_table_from_tsv(&corrupted).is_err());
    }

    #[test]
    fn truncated_series_rejected() {
        let ds = tiny();
        let bytes = series_to_bytes(&ds.series);
        let truncated = bytes.slice(0..bytes.len() - 3);
        assert!(series_from_bytes(truncated).is_err());
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut raw = series_to_bytes(&tiny().series).to_vec();
        raw[0] ^= 0xFF;
        assert!(series_from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut raw = series_to_bytes(&tiny().series).to_vec();
        raw.push(0);
        assert!(series_from_bytes(Bytes::from(raw)).is_err());
    }
}
