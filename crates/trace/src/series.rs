//! CPU / bandwidth time-series generation.
//!
//! §2.1.2's schema: CPU utilization every minute, bandwidth every five
//! minutes. Each VM's series is
//!
//! ```text
//! x(t) = level · shape(t) · weekly(t) · drift(week) · noise(t)
//! ```
//!
//! where `shape` blends the app category's diurnal profile with a per-VM
//! amplitude (edge VMs are strongly human-driven, cloud VMs flat — the
//! §4.2/§4.4 CV and seasonality contrasts), `weekly` applies the category's
//! weekend factor, `drift` is an optional week-scale log random walk
//! (Fig. 12's erratic bandwidth VMs), and `noise` is log-normal
//! multiplicative noise. The deterministic part is normalized so the series
//! mean equals the VM's target mean.

use crate::app::AppCategory;
use crate::flavor::FlavorParams;
use edgescope_net::rng::log_normal_mean_cv;
use rand::Rng;

/// Sampling configuration of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Trace length in days.
    pub days: usize,
    /// CPU sampling interval in minutes (paper: 1).
    pub cpu_interval_min: usize,
    /// Bandwidth sampling interval in minutes (paper: 5).
    pub bw_interval_min: usize,
    /// Weekday of day 0 (0 = Monday).
    pub start_weekday: usize,
}

impl TraceConfig {
    /// The paper's full three-month schema (92 days, 1-min CPU, 5-min
    /// bandwidth). ~130 k CPU samples per VM — use for targeted studies,
    /// not for whole-population sweeps.
    pub fn paper() -> Self {
        TraceConfig { days: 92, cpu_interval_min: 1, bw_interval_min: 5, start_weekday: 0 }
    }

    /// A four-week compact configuration (5-min CPU, 15-min bandwidth)
    /// that keeps whole-population experiments in memory while preserving
    /// every statistic the experiments read (means, CVs, half-hour
    /// windows, weekly averages).
    pub fn compact() -> Self {
        TraceConfig { days: 28, cpu_interval_min: 5, bw_interval_min: 15, start_weekday: 0 }
    }

    /// Number of CPU samples per VM.
    pub fn cpu_samples(&self) -> usize {
        self.days * 24 * 60 / self.cpu_interval_min
    }

    /// Number of bandwidth samples per VM.
    pub fn bw_samples(&self) -> usize {
        self.days * 24 * 60 / self.bw_interval_min
    }

    /// CPU samples per half-hour prediction window (§4.4).
    pub fn cpu_samples_per_half_hour(&self) -> usize {
        (30 / self.cpu_interval_min).max(1)
    }

    fn weekday_of_day(&self, day: usize) -> usize {
        (self.start_weekday + day) % 7
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::compact()
    }
}

/// Per-VM temporal profile, drawn once per VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmProfile {
    /// Application category shaping the diurnal profile.
    pub category: AppCategory,
    /// Target mean CPU utilization, percent.
    pub mean_util_pct: f64,
    /// Diurnal amplitude in `[0, 1]` (0 = flat, 1 = full category profile).
    pub diurnal_amp: f64,
    /// Per-VM phase shift in hours (people in different cities wake at
    /// slightly different times).
    pub phase_h: f64,
    /// Per-sample multiplicative noise CV.
    pub noise_cv: f64,
    /// Mean bandwidth in Mbps (the *used* level, below the subscription).
    pub bw_mean_mbps: f64,
    /// Week-scale log random-walk sigma for bandwidth; `None` = stable VM.
    pub bw_drift_sigma: Option<f64>,
    /// CV of the per-day amplitude multiplier (day-to-day irregularity of
    /// the diurnal swing).
    pub day_amp_cv: f64,
}

impl VmProfile {
    /// Draw a profile for a VM of `category` with target mean utilization
    /// `mean_util_pct` and subscribed bandwidth `subscribed_mbps`.
    pub fn draw(
        rng: &mut impl Rng,
        params: &FlavorParams,
        category: AppCategory,
        mean_util_pct: f64,
        subscribed_mbps: f64,
    ) -> Self {
        let (lo, hi) = params.diurnal_amp;
        let amp_base = rng.gen_range(lo..=hi);
        // Non-interactive categories barely follow humans.
        let diurnal_amp = if category.interactive() { amp_base } else { amp_base * 0.3 };
        let drift = if rng.gen::<f64>() < params.bw_drift_prob {
            Some(params.bw_drift_sigma)
        } else {
            None
        };
        // Customers use 20–60 % of what they subscribed (over-provisioning,
        // §4.2).
        let bw_util = rng.gen_range(0.2..0.6);
        VmProfile {
            category,
            mean_util_pct: mean_util_pct.clamp(0.1, 95.0),
            diurnal_amp,
            phase_h: rng.gen_range(-1.5..1.5),
            noise_cv: params.cpu_noise_cv,
            bw_mean_mbps: subscribed_mbps * bw_util,
            bw_drift_sigma: drift,
            day_amp_cv: params.day_amp_cv,
        }
    }

    /// Deterministic shape at hour-of-day `h` and weekday `wd`, with the
    /// day's amplitude factor applied to the diurnal swing.
    fn shape_with(&self, h: f64, wd: usize, day_factor: f64) -> f64 {
        let d = self.category.diurnal((h + self.phase_h).rem_euclid(24.0));
        let amp = (self.diurnal_amp * day_factor).clamp(0.0, 1.0);
        let s = (1.0 - amp) + amp * d;
        if wd >= 5 {
            s * self.category.weekend_factor()
        } else {
            s
        }
    }

    /// Per-day amplitude factors for a trace.
    fn day_factors(&self, rng: &mut impl Rng, days: usize) -> Vec<f64> {
        (0..days.max(1))
            .map(|_| log_normal_mean_cv(rng, 1.0, self.day_amp_cv))
            .collect()
    }

    /// Mean of the realized shape for a concrete trace (given each day's
    /// amplitude factor) — the exact normalization constant, so the series
    /// mean hits the target regardless of amplitude clamping or trace
    /// length.
    fn shape_mean_with(&self, cfg: &TraceConfig, factors: &[f64]) -> f64 {
        let mut acc = 0.0;
        let mut n = 0;
        for (day, &f) in factors.iter().enumerate().take(cfg.days) {
            let wd = cfg.weekday_of_day(day);
            for step in 0..96 {
                acc += self.shape_with(step as f64 * 0.25, wd, f);
                n += 1;
            }
        }
        acc / n.max(1) as f64
    }

    /// Generate the CPU series (percent, clamped to `[0, 100]`).
    pub fn cpu_series(&self, rng: &mut impl Rng, cfg: &TraceConfig) -> Vec<f32> {
        let factors = self.day_factors(rng, cfg.days);
        let norm = self.mean_util_pct / self.shape_mean_with(cfg, &factors);
        let n = cfg.cpu_samples();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let minute = i * cfg.cpu_interval_min;
            let day = minute / (24 * 60);
            let h = (minute % (24 * 60)) as f64 / 60.0;
            let det = norm * self.shape_with(h, cfg.weekday_of_day(day), factors[day]);
            let v = log_normal_mean_cv(rng, det.max(1e-3), self.noise_cv);
            out.push(v.clamp(0.0, 100.0) as f32);
        }
        out
    }

    /// Generate the bandwidth series (Mbps, non-negative).
    pub fn bw_series(&self, rng: &mut impl Rng, cfg: &TraceConfig) -> Vec<f32> {
        let factors = self.day_factors(rng, cfg.days);
        let norm = self.bw_mean_mbps / self.shape_mean_with(cfg, &factors);
        let n = cfg.bw_samples();
        let mut out = Vec::with_capacity(n);
        let mut drift_level: f64 = 1.0;
        let mut current_week = usize::MAX;
        for i in 0..n {
            let minute = i * cfg.bw_interval_min;
            let day = minute / (24 * 60);
            let week = day / 7;
            if week != current_week {
                current_week = week;
                if let Some(sigma) = self.bw_drift_sigma {
                    // Log random walk, re-centred to keep E[level] bounded.
                    let step = log_normal_mean_cv(rng, 1.0, sigma);
                    drift_level = (drift_level * step).clamp(0.1, 10.0);
                }
            }
            let h = (minute % (24 * 60)) as f64 / 60.0;
            let det = norm * drift_level * self.shape_with(h, cfg.weekday_of_day(day), factors[day]);
            // Bandwidth is burstier than CPU.
            let v = log_normal_mean_cv(rng, det.max(1e-4), self.noise_cv * 1.6);
            out.push(v.max(0.0) as f32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::FlavorParams;
    use edgescope_analysis::stats::{coefficient_of_variation, mean};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> TraceConfig {
        TraceConfig { days: 14, cpu_interval_min: 5, bw_interval_min: 15, start_weekday: 0 }
    }

    fn profile(seed: u64, flavor: &FlavorParams, cat: AppCategory, util: f64) -> (VmProfile, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = VmProfile::draw(&mut rng, flavor, cat, util, 100.0);
        (p, rng)
    }

    #[test]
    fn config_sample_counts() {
        let c = TraceConfig::paper();
        assert_eq!(c.cpu_samples(), 92 * 1440);
        assert_eq!(c.bw_samples(), 92 * 288);
        assert_eq!(c.cpu_samples_per_half_hour(), 30);
        assert_eq!(cfg().cpu_samples_per_half_hour(), 6);
    }

    #[test]
    fn cpu_series_hits_target_mean() {
        let (p, mut rng) = profile(1, &FlavorParams::edge_nep(), AppCategory::LiveStreaming, 8.0);
        let xs: Vec<f64> = p.cpu_series(&mut rng, &cfg()).iter().map(|&v| v as f64).collect();
        let m = mean(&xs);
        assert!((m - 8.0).abs() / 8.0 < 0.12, "mean {m}");
    }

    #[test]
    fn cpu_series_bounded() {
        let (p, mut rng) = profile(2, &FlavorParams::edge_nep(), AppCategory::CloudGaming, 60.0);
        for v in p.cpu_series(&mut rng, &cfg()) {
            assert!((0.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn edge_series_more_variable_than_cloud() {
        // Fig. 10(b): edge CV ≈ 2× cloud CV.
        let mut edge_cvs = Vec::new();
        let mut cloud_cvs = Vec::new();
        for seed in 0..40 {
            let (p, mut rng) =
                profile(seed, &FlavorParams::edge_nep(), AppCategory::LiveStreaming, 8.0);
            let xs: Vec<f64> = p.cpu_series(&mut rng, &cfg()).iter().map(|&v| v as f64).collect();
            edge_cvs.push(coefficient_of_variation(&xs));
            let (p, mut rng) =
                profile(1000 + seed, &FlavorParams::cloud_azure(), AppCategory::WebService, 20.0);
            let xs: Vec<f64> = p.cpu_series(&mut rng, &cfg()).iter().map(|&v| v as f64).collect();
            cloud_cvs.push(coefficient_of_variation(&xs));
        }
        let e = mean(&edge_cvs);
        let c = mean(&cloud_cvs);
        assert!(e > 1.5 * c, "edge CV {e} vs cloud CV {c}");
    }

    #[test]
    fn weekend_modulation_visible() {
        let (p, mut rng) =
            profile(3, &FlavorParams::edge_nep(), AppCategory::OnlineEducation, 10.0);
        let c = cfg();
        let xs = p.cpu_series(&mut rng, &c);
        let per_day = 24 * 60 / c.cpu_interval_min;
        // Days 0–4 weekdays, 5–6 weekend (start Monday).
        let weekday: f64 = xs[..5 * per_day].iter().map(|&v| v as f64).sum::<f64>() / (5 * per_day) as f64;
        let weekend: f64 =
            xs[5 * per_day..7 * per_day].iter().map(|&v| v as f64).sum::<f64>() / (2 * per_day) as f64;
        assert!(weekday > 1.5 * weekend, "weekday {weekday} weekend {weekend}");
    }

    #[test]
    fn bw_drift_changes_weekly_levels() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = VmProfile::draw(
            &mut rng,
            &FlavorParams::edge_nep(),
            AppCategory::LiveStreaming,
            10.0,
            200.0,
        );
        p.bw_drift_sigma = Some(0.6);
        let c = TraceConfig { days: 28, cpu_interval_min: 5, bw_interval_min: 15, start_weekday: 0 };
        let xs = p.bw_series(&mut rng, &c);
        let per_week = 7 * 24 * 60 / c.bw_interval_min;
        let weekly: Vec<f64> = xs
            .chunks(per_week)
            .map(|w| w.iter().map(|&v| v as f64).sum::<f64>() / w.len() as f64)
            .collect();
        let max = edgescope_analysis::stats::peak_max(&weekly);
        let min = edgescope_analysis::stats::peak_min(&weekly);
        assert!(max / min > 1.3, "weekly levels {weekly:?}");

        // A stable VM's weekly levels stay close.
        p.bw_drift_sigma = None;
        let xs = p.bw_series(&mut rng, &c);
        let weekly: Vec<f64> = xs
            .chunks(per_week)
            .map(|w| w.iter().map(|&v| v as f64).sum::<f64>() / w.len() as f64)
            .collect();
        let max = edgescope_analysis::stats::peak_max(&weekly);
        let min = edgescope_analysis::stats::peak_min(&weekly);
        assert!(max / min < 1.3, "stable weekly levels {weekly:?}");
    }

    #[test]
    fn edge_seasonality_stronger() {
        // §4.4: NEP mean seasonal strength ≈0.42, Azure ≈0.26. Check the
        // ordering on hourly-resampled series.
        use edgescope_analysis::seasonality::seasonal_strength;
        use edgescope_analysis::timeseries::resample_mean;
        let c = cfg();
        let per_hour = 60 / c.cpu_interval_min;
        let mut edge = Vec::new();
        let mut cloud = Vec::new();
        for seed in 0..30 {
            let (p, mut rng) =
                profile(seed, &FlavorParams::edge_nep(), AppCategory::LiveStreaming, 8.0);
            let xs: Vec<f64> = p.cpu_series(&mut rng, &c).iter().map(|&v| v as f64).collect();
            edge.push(seasonal_strength(&resample_mean(&xs, per_hour), 24));
            let (p, mut rng) =
                profile(2000 + seed, &FlavorParams::cloud_azure(), AppCategory::WebService, 20.0);
            let xs: Vec<f64> = p.cpu_series(&mut rng, &c).iter().map(|&v| v as f64).collect();
            cloud.push(seasonal_strength(&resample_mean(&xs, per_hour), 24));
        }
        let e = mean(&edge);
        let cl = mean(&cloud);
        assert!(e > cl + 0.1, "edge seasonality {e} vs cloud {cl}");
    }

    #[test]
    fn deterministic_given_seed() {
        let flavor = FlavorParams::edge_nep();
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = VmProfile::draw(&mut rng, &flavor, AppCategory::ContentDelivery, 12.0, 80.0);
            p.cpu_series(&mut rng, &cfg())
        };
        assert_eq!(gen(77), gen(77));
    }
}
