//! NaN regression tests for the billing folds rerouted onto the
//! NaN-propagating `peak_max` helper.
//!
//! Contract: a NaN bandwidth sample must surface as a NaN charge, never
//! as a silently *cheaper* bill. The old `fold(0.0, f64::max)` idiom
//! dropped NaN operands, so a poisoned day billed as a free one; and a
//! descending `total_cmp` sort alone would re-launder the NaN into the
//! skipped top-3 days.

use edgescope_billing::bill::{cloud_network_month, daily_peaks, nep_network_month, p95_daily_peak};
use edgescope_billing::{CloudTariff, NepTariff, NetworkModel};
use edgescope_billing::tariff::Operator;

fn poisoned_month() -> Vec<f64> {
    let mut bw = vec![20.0; 288 * 30];
    bw[288 * 4 + 7] = f64::NAN; // one poisoned sample on day 5
    bw
}

#[test]
fn daily_peaks_propagate_nan() {
    let peaks = daily_peaks(&poisoned_month(), 5);
    assert_eq!(peaks.len(), 30);
    assert!(peaks[4].is_nan(), "the poisoned day's peak must be NaN, not 0");
    for (d, p) in peaks.iter().enumerate() {
        if d != 4 {
            assert_eq!(*p, 20.0, "day {d}");
        }
    }
}

#[test]
fn p95_daily_peak_propagates_nan() {
    // The NaN day would land among the skipped top-3 under a descending
    // sort; the charge level must be NaN, not the clean 20.0.
    assert!(p95_daily_peak(&poisoned_month(), 5).is_nan());
    assert_eq!(p95_daily_peak(&vec![20.0; 288 * 30], 5), 20.0);
}

#[test]
fn monthly_bills_carry_the_poison() {
    let bw = poisoned_month();
    let nep = nep_network_month(&NepTariff::paper(), &bw, 5, "Chengdu", Operator::Telecom);
    assert!(nep.is_nan(), "NEP bill must not silently price a poisoned series");
}

#[test]
#[should_panic(expected = "negative bandwidth")]
fn fixed_reservation_rejects_nan_peak() {
    // The pre-reserved cloud model reserves for the peak. With the
    // NaN-propagating fold the poison reaches the tariff boundary, whose
    // own validity assert rejects it by name — the old `fold(0.0, max)`
    // silently reserved for the *clean* peak instead.
    cloud_network_month(
        &CloudTariff::alicloud(),
        NetworkModel::PreReservedFixed,
        &poisoned_month(),
        5,
    );
}
