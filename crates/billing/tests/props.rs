//! Property-based tests of the billing engines.

use edgescope_billing::bill::{cloud_network_month, daily_peaks, nep_network_month, p95_daily_peak};
use edgescope_billing::tariff::{CloudTariff, NepTariff, NetworkModel, Operator};
use proptest::prelude::*;

proptest! {
    #[test]
    fn p95_daily_peak_between_min_and_max_peak(
        bw in prop::collection::vec(0.0..1000.0f64, 1..2000),
    ) {
        let peaks = daily_peaks(&bw, 60);
        let p95 = p95_daily_peak(&bw, 60);
        let max = peaks.iter().cloned().fold(f64::MIN, f64::max);
        let min = peaks.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(p95 <= max + 1e-9);
        prop_assert!(p95 >= min - 1e-9);
    }

    #[test]
    fn scaling_traffic_scales_nep_bill(
        bw in prop::collection::vec(0.1..500.0f64, 24..800),
        k in 1.0..10.0f64,
    ) {
        let t = NepTariff::paper();
        let scaled: Vec<f64> = bw.iter().map(|x| x * k).collect();
        let base = nep_network_month(&t, &bw, 60, "Wuhan", Operator::Telecom);
        let big = nep_network_month(&t, &scaled, 60, "Wuhan", Operator::Telecom);
        prop_assert!((big - base * k).abs() < 1e-6 * big.max(1.0), "linear in peak level");
    }

    #[test]
    fn cloud_bills_nonnegative_and_monotone_in_traffic(
        bw in prop::collection::vec(0.0..500.0f64, 1..500),
        extra in 0.0..100.0f64,
    ) {
        let t = CloudTariff::huawei();
        for model in NetworkModel::ALL {
            let base = cloud_network_month(&t, model, &bw, 5);
            prop_assert!(base >= 0.0);
            let more: Vec<f64> = bw.iter().map(|x| x + extra).collect();
            let bigger = cloud_network_month(&t, model, &more, 5);
            prop_assert!(bigger + 1e-9 >= base, "{model:?} must be monotone");
        }
    }

    #[test]
    fn fixed_tariff_merging_above_tier_costs_more(
        a in 6.0..200.0f64,
        b in 6.0..200.0f64,
    ) {
        // The first 5 Mbps are priced below the 80/Mbps marginal rate, so
        // two separate reservations (each enjoying the cheap tier) beat
        // one merged reservation — the structural reason the paper's
        // virtual-cloud baseline is sensitive to how traffic is merged.
        let t = CloudTariff::alicloud();
        prop_assert!(
            t.fixed_month(a + b) + 1e-9 >= t.fixed_month(a) + t.fixed_month(b)
                - t.fixed_month(5.0),
        );
    }

    #[test]
    fn hardware_bills_linear(
        cores in 1u32..64,
        mem in 1u32..256,
        disk in 0u32..1000,
        n in 1u32..20,
    ) {
        let nep = NepTariff::paper();
        let one = nep.hardware_month(cores, mem, disk);
        let many: f64 = (0..n).map(|_| nep.hardware_month(cores, mem, disk)).sum();
        prop_assert!((many - one * n as f64).abs() < 1e-6);
        prop_assert!(one > 0.0);
    }

    #[test]
    fn nep_vs_cloud_unit_price_gap(mbps in 6.0..500.0f64) {
        // For steady traffic above the 5-Mbps tier, NEP's most expensive
        // city still undercuts AliCloud's on-demand rate (the §4.5
        // incentive). Guangzhou/Telecom = 50/Mbps/month; AliCloud
        // on-demand ≈ 0.248·720 ≈ 178/Mbps/month above the tier.
        let nep = NepTariff::paper();
        let ali = CloudTariff::alicloud();
        let bw = vec![mbps; 288 * 30];
        let nep_cost = nep_network_month(&nep, &bw, 5, "Guangzhou", Operator::Telecom);
        let ali_cost = cloud_network_month(&ali, NetworkModel::OnDemandByBandwidth, &bw, 5);
        prop_assert!(nep_cost < ali_cost, "NEP {nep_cost} vs AliCloud {ali_cost}");
    }
}
