//! The §4.5 "virtual baseline" and Table 3.
//!
//! "It works by clustering and merging the VMs' usage (both hardware and
//! bandwidth) of NEP into the site distribution of cloud platforms based
//! on geographical distances." For each of the heaviest apps we re-bill
//! its NEP trace under a cloud tariff: every NEP site's traffic moves to
//! the geographically nearest cloud region, the app's bandwidth is merged
//! per region, and the three cloud network models are priced against
//! NEP's own bill. Table 3 reports the distribution of
//! `cloud cost / NEP cost` ratios.

use crate::bill::{cloud_network_month, nep_app_bill, scale_to_month};
use crate::tariff::{CloudTariff, NepTariff, NetworkModel, Operator};
use edgescope_platform::deployment::Deployment;
use edgescope_trace::dataset::TraceDataset;
use std::collections::BTreeMap;

/// Distribution of cost ratios over the examined apps.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRatios {
    /// Smallest per-app ratio.
    pub min: f64,
    /// Largest per-app ratio.
    pub max: f64,
    /// Mean ratio.
    pub mean: f64,
    /// Median ratio.
    pub median: f64,
}

impl CostRatios {
    fn of(ratios: &[f64]) -> Self {
        assert!(!ratios.is_empty(), "no ratios");
        CostRatios {
            min: edgescope_analysis::stats::peak_min(ratios),
            max: edgescope_analysis::stats::peak_max(ratios),
            mean: edgescope_analysis::stats::mean(ratios),
            median: edgescope_analysis::stats::median(ratios),
        }
    }
}

/// The Table 3 block for one virtual cloud.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualCloudReport {
    /// Which cloud tariff was used.
    pub cloud_name: &'static str,
    /// Per network model: the ratio distribution and the raw per-app
    /// ratios (for CDFs / deeper analysis).
    pub by_model: Vec<(NetworkModel, CostRatios, Vec<f64>)>,
    /// Mean share of the NEP bill that is network (the §4.5 "76 % on
    /// average" breakdown statistic).
    pub nep_network_share_mean: f64,
}

/// Operator assignment of a site (stable: alternating by site id, giving
/// the platform a realistic multi-operator mix).
fn operator_of(site_idx: u32) -> Operator {
    if site_idx.is_multiple_of(2) {
        Operator::Telecom
    } else {
        Operator::Cmcc
    }
}

/// How the virtual cloud bills an app's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficGranularity {
    /// Merge the app's traffic per nearest region (the paper's
    /// "clustering and merging" description) — statistical multiplexing
    /// lowers reserved-bandwidth bills.
    MergedPerRegion,
    /// Bill each VM's own traffic (how cloud customers actually reserve
    /// per-VM bandwidth) — no multiplexing benefit.
    PerVm,
}

/// Compute Table 3's ratios for `n_heaviest` apps of an NEP trace against
/// one cloud, merging traffic per region (the paper's method).
pub fn table3_ratios(
    ds: &TraceDataset,
    dep: &Deployment,
    cloud: &CloudTariff,
    cloud_regions: &Deployment,
    n_heaviest: usize,
) -> VirtualCloudReport {
    table3_ratios_with(ds, dep, cloud, cloud_regions, n_heaviest, TrafficGranularity::MergedPerRegion)
}

/// [`table3_ratios`] with an explicit traffic-billing granularity.
pub fn table3_ratios_with(
    ds: &TraceDataset,
    dep: &Deployment,
    cloud: &CloudTariff,
    cloud_regions: &Deployment,
    n_heaviest: usize,
    granularity: TrafficGranularity,
) -> VirtualCloudReport {
    let nep = NepTariff::paper();
    let interval = ds.config.bw_interval_min;
    let days = ds.config.days as f64;
    let heavy = ds.heaviest_apps(n_heaviest);
    let by_app = ds.vms_per_app();

    // Pre-compute NEP-site → nearest-cloud-region mapping.
    let region_of: Vec<usize> = dep
        .sites
        .iter()
        .map(|s| cloud_regions.kth_nearest(s.geo(), 0).0)
        .collect();

    let mut ratios: BTreeMap<NetworkModel, Vec<f64>> =
        NetworkModel::ALL.iter().map(|m| (*m, Vec::new())).collect();
    let mut net_shares = Vec::new();

    for app in &heavy {
        let idxs = &by_app[app];

        // --- NEP side -------------------------------------------------
        let specs: Vec<(u32, u32, u32)> = idxs
            .iter()
            .map(|&i| {
                let r = &ds.records[i];
                (r.cores, r.mem_gb, r.disk_gb)
            })
            .collect();
        // Combine the app's bandwidth per NEP site.
        let mut site_bw: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for &i in idxs {
            let site = ds.records[i].site.0;
            let acc = site_bw
                .entry(site)
                .or_insert_with(|| vec![0.0; ds.series[i].bw_mbps.len()]);
            for (a, &v) in acc.iter_mut().zip(&ds.series[i].bw_mbps) {
                *a += v as f64;
            }
        }
        let per_site: Vec<(String, Operator, Vec<f64>)> = site_bw
            .iter()
            .map(|(&site, bw)| {
                let city = dep.sites[site as usize].city.name.to_string();
                (city, operator_of(site), bw.clone())
            })
            .collect();
        let (nep_hw, nep_net) = nep_app_bill(&nep, &specs, &per_site, interval);
        let nep_total = nep_hw + nep_net;
        if nep_total <= 0.0 {
            continue;
        }
        net_shares.push(nep_net / nep_total);

        // --- Cloud side -------------------------------------------------
        let cloud_hw: f64 = specs
            .iter()
            .map(|&(c, m, d)| cloud.hardware_month(c, m, d))
            .sum();
        // The billable traffic aggregates: merged per nearest cloud
        // region, or each VM on its own.
        let aggregates: Vec<Vec<f64>> = match granularity {
            TrafficGranularity::MergedPerRegion => {
                let mut region_bw: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
                for (&site, bw) in &site_bw {
                    let region = region_of[site as usize];
                    let acc = region_bw.entry(region).or_insert_with(|| vec![0.0; bw.len()]);
                    for (a, &v) in acc.iter_mut().zip(bw) {
                        *a += v;
                    }
                }
                region_bw.into_values().collect()
            }
            TrafficGranularity::PerVm => idxs
                .iter()
                .map(|&i| ds.series[i].bw_mbps.iter().map(|&v| v as f64).collect())
                .collect(),
        };
        for model in NetworkModel::ALL {
            let mut cloud_net = 0.0;
            for bw in &aggregates {
                let c = cloud_network_month(cloud, model, bw, interval);
                cloud_net += match model {
                    // Integrated bills cover only `days` of trace; scale to
                    // a month. Reserved bandwidth is monthly by definition.
                    NetworkModel::OnDemandByBandwidth | NetworkModel::OnDemandByQuantity => {
                        scale_to_month(c, days)
                    }
                    NetworkModel::PreReservedFixed => c,
                };
            }
            ratios
                .get_mut(&model)
                .unwrap()
                .push((cloud_hw + cloud_net) / nep_total);
        }
    }

    VirtualCloudReport {
        cloud_name: cloud.name,
        by_model: NetworkModel::ALL
            .iter()
            .map(|m| (*m, CostRatios::of(&ratios[m]), ratios[m].clone()))
            .collect(),
        nep_network_share_mean: edgescope_analysis::stats::mean(&net_shares),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgescope_trace::series::TraceConfig;

    fn dataset() -> (TraceDataset, Deployment) {
        let cfg = TraceConfig { days: 10, cpu_interval_min: 30, bw_interval_min: 15, start_weekday: 0 };
        TraceDataset::generate_nep(11, 60, 60, cfg)
    }

    #[test]
    fn table3_shape_and_ordering() {
        let (ds, dep) = dataset();
        let ali = Deployment::alicloud();
        let rep = table3_ratios(&ds, &dep, &CloudTariff::alicloud(), &ali, 20);
        assert_eq!(rep.by_model.len(), 3);
        for (model, r, raw) in &rep.by_model {
            assert_eq!(raw.len(), 20, "{model:?} app count");
            assert!(r.min <= r.median && r.median <= r.max);
            assert!(r.min > 0.0);
        }
    }

    #[test]
    fn cloud_costs_more_on_average() {
        // Table 3's headline: moving the heavy apps to the cloud costs
        // more under every network model, most under pre-reserved.
        let (ds, dep) = dataset();
        let ali = Deployment::alicloud();
        let rep = table3_ratios(&ds, &dep, &CloudTariff::alicloud(), &ali, 20);
        let mean_of = |m: NetworkModel| {
            rep.by_model.iter().find(|(mm, ..)| *mm == m).unwrap().1.mean
        };
        let od_bw = mean_of(NetworkModel::OnDemandByBandwidth);
        let od_q = mean_of(NetworkModel::OnDemandByQuantity);
        let fixed = mean_of(NetworkModel::PreReservedFixed);
        assert!(od_bw > 1.0, "on-demand-by-bandwidth mean {od_bw}");
        assert!(fixed >= od_bw * 0.8, "fixed {fixed} vs od {od_bw}");
        assert!(od_q > 1.0, "by-quantity mean {od_q}");
    }

    #[test]
    fn network_dominates_nep_bills() {
        // §4.5: network is ≈76 % of the NEP bill on average for the
        // heaviest apps (band: clearly more than half).
        let (ds, dep) = dataset();
        let ali = Deployment::alicloud();
        let rep = table3_ratios(&ds, &dep, &CloudTariff::alicloud(), &ali, 20);
        assert!(
            rep.nep_network_share_mean > 0.5,
            "network share {}",
            rep.nep_network_share_mean
        );
    }

    #[test]
    fn per_vm_billing_raises_reserved_ratio() {
        // The multiplexing effect: per-VM reservations cannot share the
        // cheap first-5-Mbps tier or smooth peaks, so the pre-reserved
        // ratio rises vs merged-per-region billing.
        let (ds, dep) = dataset();
        let ali = Deployment::alicloud();
        let merged = table3_ratios_with(
            &ds, &dep, &CloudTariff::alicloud(), &ali, 15, TrafficGranularity::MergedPerRegion,
        );
        let per_vm = table3_ratios_with(
            &ds, &dep, &CloudTariff::alicloud(), &ali, 15, TrafficGranularity::PerVm,
        );
        let fixed = |r: &VirtualCloudReport| {
            r.by_model
                .iter()
                .find(|(m, ..)| *m == NetworkModel::PreReservedFixed)
                .unwrap()
                .1
                .mean
        };
        assert!(
            fixed(&per_vm) > fixed(&merged),
            "per-VM {} vs merged {}",
            fixed(&per_vm),
            fixed(&merged)
        );
    }

    #[test]
    fn huawei_report_also_works() {
        let (ds, dep) = dataset();
        let hw = Deployment::huawei_cloud();
        let rep = table3_ratios(&ds, &dep, &CloudTariff::huawei(), &hw, 10);
        assert_eq!(rep.cloud_name, "Huawei Cloud (vCloud-2)");
        for (_, r, _) in &rep.by_model {
            assert!(r.mean.is_finite() && r.mean > 0.0);
        }
    }
}
