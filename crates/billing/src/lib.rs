#![warn(missing_docs)]
//! # edgescope-billing
//!
//! Billing engines reproducing §4.5 and Appendix D:
//!
//! * [`tariff`] — the Table 5 price sheets: NEP (per-core/GB/Mbps, city-
//!   and operator-dependent bandwidth price), AliCloud (vCloud-1) and
//!   Huawei Cloud (vCloud-2) with all three network billing models
//!   (on-demand by bandwidth, on-demand by traffic quantity, pre-reserved
//!   fixed bandwidth). Unit tests reproduce the appendix's worked
//!   examples.
//! * [`bill`] — monthly bills from traces. NEP's network billing follows
//!   Appendix D exactly: per-site traffic aggregation, daily peak
//!   bandwidth, the 95th percentile of daily peaks (the "4th highest" of a
//!   month) times the local unit price. Cloud billing integrates tariffs
//!   over the 5-minute bandwidth samples (clouds bill fine-grained).
//! * [`vcloud`] — the §4.5 "virtual baseline": NEP VMs are clustered onto
//!   a cloud's region footprint by geographic distance and re-billed under
//!   the cloud tariff, producing Table 3's cost ratios over the 50
//!   heaviest apps.
//!
//! Prices are in RMB/month as in the paper.

pub mod bill;
pub mod tariff;
pub mod vcloud;

pub use bill::{
    cloud_network_month, daily_peaks, nep_app_bill, nep_contended_network_month,
    nep_network_month, p95_daily_peak, ContendedBill,
};
pub use tariff::{CloudTariff, NepTariff, NetworkModel};
pub use vcloud::{table3_ratios, table3_ratios_with, CostRatios, TrafficGranularity, VirtualCloudReport};
