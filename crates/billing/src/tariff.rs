//! The Table 5 price sheets (RMB).
//!
//! Cloud hardware is quoted as bundle prices in the paper; we carry
//! per-unit rates fitted to those bundles (the bundles themselves are
//! asserted in tests within the paper's rounding). Cloud network pricing
//! is implemented exactly as the appendix's worked examples compute it.
//! NEP bandwidth prices vary by city and operator: 25–50 /Mbps/month on
//! China Telecom, 15–30 on China Mobile (Table 5's last rows).

/// The three cloud network billing models (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetworkModel {
    /// On-demand, by bandwidth level per hour.
    OnDemandByBandwidth,
    /// On-demand, by transferred volume.
    OnDemandByQuantity,
    /// Pre-reserved fixed monthly bandwidth.
    PreReservedFixed,
}

impl NetworkModel {
    /// All three models, in Table 3 order.
    pub const ALL: [NetworkModel; 3] = [
        NetworkModel::OnDemandByBandwidth,
        NetworkModel::OnDemandByQuantity,
        NetworkModel::PreReservedFixed,
    ];

    /// Human-readable label matching Table 3.
    pub fn label(&self) -> &'static str {
        match self {
            NetworkModel::OnDemandByBandwidth => "on-demand, by bandwidth",
            NetworkModel::OnDemandByQuantity => "on-demand, by quantity",
            NetworkModel::PreReservedFixed => "pre-reserved (fixed)",
        }
    }
}

/// A cloud platform's tariff.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudTariff {
    /// Platform display name.
    pub name: &'static str,
    /// RMB per vCPU per month (fitted to the bundle table).
    pub cpu_month: f64,
    /// RMB per GB memory per month.
    pub mem_month: f64,
    /// RMB per GB SSD per month.
    pub disk_month: f64,
    /// Fixed monthly price for the first 5 Mbps — per-Mbps marginal steps
    /// (AliCloud's schedule is irregular: 23/23/25/25/29).
    pub fixed_first5_steps: [f64; 5],
    /// Fixed monthly price per Mbps beyond 5.
    pub fixed_above5: f64,
    /// On-demand hourly price per Mbps at or below 5 Mbps.
    pub od_low_hour: f64,
    /// On-demand hourly price per Mbps above 5 Mbps.
    pub od_high_hour: f64,
    /// Price per GB transferred.
    pub per_gb: f64,
}

impl CloudTariff {
    /// Alibaba Cloud (vCloud-1). Bundles: 2C+8G = 240, 2C+16G = 318
    /// ⇒ mem = 9.75/GB, cpu = 81/core. Fixed bandwidth: 23/46/71/96/125
    /// cumulative for 1–5 Mbps, 80/Mbps beyond.
    pub fn alicloud() -> Self {
        CloudTariff {
            name: "AliCloud (vCloud-1)",
            cpu_month: 81.0,
            mem_month: 9.75,
            disk_month: 1.0,
            fixed_first5_steps: [23.0, 23.0, 25.0, 25.0, 29.0],
            fixed_above5: 80.0,
            od_low_hour: 0.063,
            od_high_hour: 0.248,
            per_gb: 0.8,
        }
    }

    /// Huawei Cloud (vCloud-2). Bundles: 1C+1G = 32.2 … 2C+8G = 251.6;
    /// a linear fit gives ≈ 26/core + 25/GB. Fixed bandwidth: 23/Mbps up
    /// to 5, 80 beyond. On-demand high tier 0.25.
    pub fn huawei() -> Self {
        CloudTariff {
            name: "Huawei Cloud (vCloud-2)",
            cpu_month: 26.0,
            mem_month: 25.0,
            disk_month: 0.7,
            fixed_first5_steps: [23.0; 5],
            fixed_above5: 80.0,
            od_low_hour: 0.063,
            od_high_hour: 0.25,
            per_gb: 0.8,
        }
    }

    /// Monthly hardware price of a (cores, mem GB, disk GB) subscription.
    pub fn hardware_month(&self, cores: u32, mem_gb: u32, disk_gb: u32) -> f64 {
        self.cpu_month * cores as f64
            + self.mem_month * mem_gb as f64
            + self.disk_month * disk_gb as f64
    }

    /// Monthly price of a pre-reserved fixed bandwidth of `mbps`
    /// (fractions round up — you reserve whole Mbps).
    pub fn fixed_month(&self, mbps: f64) -> f64 {
        assert!(mbps >= 0.0, "negative bandwidth");
        let whole = mbps.ceil() as usize;
        let mut cost = 0.0;
        for step in 0..whole.min(5) {
            cost += self.fixed_first5_steps[step];
        }
        if whole > 5 {
            cost += (whole - 5) as f64 * self.fixed_above5;
        }
        cost
    }

    /// On-demand-by-bandwidth price of holding `mbps` for one hour.
    pub fn on_demand_hour(&self, mbps: f64) -> f64 {
        assert!(mbps >= 0.0, "negative bandwidth");
        let low = mbps.min(5.0) * self.od_low_hour;
        let high = (mbps - 5.0).max(0.0) * self.od_high_hour;
        low + high
    }

    /// Price of transferring `gb` of traffic.
    pub fn quantity(&self, gb: f64) -> f64 {
        assert!(gb >= 0.0, "negative volume");
        gb * self.per_gb
    }
}

/// NEP's tariff.
#[derive(Debug, Clone, PartialEq)]
pub struct NepTariff {
    /// RMB per vCPU per month.
    pub cpu_month: f64,
    /// RMB per GB memory per month.
    pub mem_month: f64,
    /// RMB per GB disk per month.
    pub disk_month: f64,
}

/// The network operator a site peers with (drives the bandwidth price
/// band).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operator {
    /// China Telecom: 25–50 /Mbps/month.
    Telecom,
    /// China Mobile: 15–30 /Mbps/month.
    Cmcc,
}

impl NepTariff {
    /// Table 5's NEP row: 65/CPU, 20/GB mem, 0.35/GB disk.
    pub fn paper() -> Self {
        NepTariff { cpu_month: 65.0, mem_month: 20.0, disk_month: 0.35 }
    }

    /// Monthly hardware price.
    pub fn hardware_month(&self, cores: u32, mem_gb: u32, disk_gb: u32) -> f64 {
        self.cpu_month * cores as f64
            + self.mem_month * mem_gb as f64
            + self.disk_month * disk_gb as f64
    }

    /// Bandwidth unit price (RMB/Mbps/month) at a given city for an
    /// operator. Deterministic in the city name (a stable hash positions
    /// the city inside the operator's band): big coastal metros price at
    /// the top of the band, as in Table 5's Guangzhou vs. Chengdu
    /// examples.
    pub fn bandwidth_unit_price(&self, city: &str, operator: Operator) -> f64 {
        let (lo, hi) = match operator {
            Operator::Telecom => (25.0, 50.0),
            Operator::Cmcc => (15.0, 30.0),
        };
        // Table 5 pins two cities exactly; others hash into the band.
        let frac = match city {
            "Guangzhou" => 1.0,
            "Chengdu" => 0.0,
            _ => {
                let mut h: u64 = 0xcbf29ce484222325;
                for b in city.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                (h % 1000) as f64 / 999.0
            }
        };
        lo + frac * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alicloud_fixed_worked_examples() {
        // Table 5: 2 Mbps ⇒ 46/month; 5 ⇒ 125; 7 ⇒ 125 + 2·80 = 285.
        let t = CloudTariff::alicloud();
        assert_eq!(t.fixed_month(2.0), 46.0);
        assert_eq!(t.fixed_month(5.0), 125.0);
        assert_eq!(t.fixed_month(7.0), 285.0);
        // Interior steps: 3 ⇒ 71, 4 ⇒ 96.
        assert_eq!(t.fixed_month(3.0), 71.0);
        assert_eq!(t.fixed_month(4.0), 96.0);
        assert_eq!(t.fixed_month(0.0), 0.0);
    }

    #[test]
    fn huawei_fixed_worked_examples() {
        // Table 5: 2 ⇒ 46; 7 ⇒ 23·5 + 2·80 = 275.
        let t = CloudTariff::huawei();
        assert_eq!(t.fixed_month(2.0), 46.0);
        assert_eq!(t.fixed_month(7.0), 275.0);
    }

    #[test]
    fn on_demand_worked_examples() {
        // Table 5: 2 Mbps for a month ⇒ (24·30)·(2·0.063) = 90.72 on both
        // clouds; Huawei 7 Mbps ⇒ (24·30)·[(5·0.063) + 2·0.25] = 586.8.
        // (The AliCloud 7-Mbps example in the paper contains a typo —
        // "(2·0.063)" where every other row uses the ≤5-Mbps tier in
        // full — so we assert the consistent formula.)
        let hours = 24.0 * 30.0;
        for t in [CloudTariff::alicloud(), CloudTariff::huawei()] {
            assert!((hours * t.on_demand_hour(2.0) - 90.72).abs() < 1e-9, "{}", t.name);
        }
        let hw = CloudTariff::huawei();
        assert!((hours * hw.on_demand_hour(7.0) - 586.8).abs() < 1e-9);
        let ali = CloudTariff::alicloud();
        let expect = hours * (5.0 * 0.063 + 2.0 * 0.248);
        assert!((hours * ali.on_demand_hour(7.0) - expect).abs() < 1e-9);
    }

    #[test]
    fn quantity_worked_example() {
        // Table 5: 1 GB ⇒ 0.8.
        assert_eq!(CloudTariff::alicloud().quantity(1.0), 0.8);
        assert_eq!(CloudTariff::huawei().quantity(1.0), 0.8);
    }

    #[test]
    fn alicloud_bundles_recovered() {
        // 2C+8G ⇒ 240, 2C+16G ⇒ 318 (paper bundle prices).
        let t = CloudTariff::alicloud();
        let b1 = t.cpu_month * 2.0 + t.mem_month * 8.0;
        let b2 = t.cpu_month * 2.0 + t.mem_month * 16.0;
        assert!((b1 - 240.0).abs() < 1.0, "2C+8G {b1}");
        assert!((b2 - 318.0).abs() < 1.0, "2C+16G {b2}");
    }

    #[test]
    fn nep_bandwidth_examples() {
        // Table 5: guangzhou-telecom 2 Mbps ⇒ 50·2 = 100; chengdu-telecom
        // 2 ⇒ 25·2 = 50; guangzhou-cmcc 2 ⇒ 30·2 = 60; chengdu-cmcc 2 ⇒
        // 15·2 = 30.
        let t = NepTariff::paper();
        assert_eq!(t.bandwidth_unit_price("Guangzhou", Operator::Telecom) * 2.0, 100.0);
        assert_eq!(t.bandwidth_unit_price("Chengdu", Operator::Telecom) * 2.0, 50.0);
        assert_eq!(t.bandwidth_unit_price("Guangzhou", Operator::Cmcc) * 2.0, 60.0);
        assert_eq!(t.bandwidth_unit_price("Chengdu", Operator::Cmcc) * 2.0, 30.0);
    }

    #[test]
    fn nep_bandwidth_in_band_and_deterministic() {
        let t = NepTariff::paper();
        for city in ["Beijing", "Wuhan", "Harbin", "Lhasa"] {
            let p = t.bandwidth_unit_price(city, Operator::Telecom);
            assert!((25.0..=50.0).contains(&p), "{city}: {p}");
            assert_eq!(p, t.bandwidth_unit_price(city, Operator::Telecom));
            let p = t.bandwidth_unit_price(city, Operator::Cmcc);
            assert!((15.0..=30.0).contains(&p), "{city}: {p}");
        }
    }

    #[test]
    fn nep_hardware_slightly_pricier_than_alicloud() {
        // §4.5 breakdown: NEP charges 3–20 % more for hardware.
        let nep = NepTariff::paper();
        let ali = CloudTariff::alicloud();
        let n = nep.hardware_month(8, 32, 100);
        let a = ali.hardware_month(8, 32, 100);
        let premium = n / a - 1.0;
        assert!((0.0..0.30).contains(&premium), "premium {premium}");
    }

    #[test]
    fn nep_unit_bandwidth_up_to_13x_cheaper() {
        // §4.5: NEP's network unit price is up to 13× cheaper. Compare the
        // cheapest NEP city (15/Mbps/mo) against AliCloud's effective
        // on-demand rate above 5 Mbps (0.248·720 ≈ 178/Mbps/mo).
        let cloud_effective = 0.248 * 24.0 * 30.0;
        let ratio = cloud_effective / 15.0;
        assert!((10.0..=13.5).contains(&ratio), "ratio {ratio}");
    }
}
