//! Monthly bills from bandwidth traces.
//!
//! NEP (Appendix D): "the network traffic of VMs located in the same site
//! will be combined and charged together. The bandwidth charged … is the
//! 95-th percentile daily peak bandwidth of the month" — i.e. record the
//! peak bandwidth per day, take the 4th-highest daily peak of the month,
//! multiply by the city/operator unit price.
//!
//! Clouds bill fine-grained: the on-demand-by-bandwidth model integrates
//! the hourly tariff over the 5-minute samples; by-quantity charges the
//! transferred volume; pre-reserved charges the fixed schedule for the
//! reserved (peak) level.

use crate::tariff::{CloudTariff, NepTariff, NetworkModel, Operator};
use edgescope_analysis::stats::peak_max;

/// Daily peak levels of a bandwidth series (`interval_min` minutes per
/// sample). A trailing partial day still yields a peak.
///
/// Peaks come from the NaN-propagating
/// [`edgescope_analysis::stats::peak_max`]: a NaN bandwidth sample makes
/// that day's peak NaN instead of silently flattening it to 0.0 (the old
/// `fold(0.0, f64::max)` idiom ignored NaN operands — a poisoned day
/// billed as a free one).
pub fn daily_peaks(bw_mbps: &[f64], interval_min: usize) -> Vec<f64> {
    assert!(interval_min > 0, "interval must be positive");
    let per_day = (24 * 60 / interval_min).max(1);
    bw_mbps.chunks(per_day).map(peak_max).collect()
}

/// The 95th-percentile daily peak — with ~30 daily peaks this is the
/// 4th-highest, matching Appendix D's description. Returns 0 for an empty
/// series.
///
/// A NaN anywhere in the series yields a NaN charge level: under the IEEE
/// total order a NaN daily peak would rank *above* +inf and land in the
/// silently-dropped top days, re-laundering the poison the peak fold just
/// preserved — so the NaN is propagated explicitly instead.
pub fn p95_daily_peak(bw_mbps: &[f64], interval_min: usize) -> f64 {
    let mut peaks = daily_peaks(bw_mbps, interval_min);
    if peaks.is_empty() {
        return 0.0;
    }
    if peaks.iter().any(|p| p.is_nan()) {
        return f64::NAN;
    }
    peaks.sort_by(|a, b| b.total_cmp(a));
    // Appendix D: the bill uses "the 4th highest one from all the daily
    // peak usage in this month" — i.e. the top 3 of ~30 days are dropped.
    // Generalized proportionally for shorter traces: drop round(n/10)
    // days.
    let skip = ((peaks.len() as f64) / 10.0).round() as usize;
    peaks[skip.min(peaks.len() - 1)]
}

/// NEP monthly network bill of one traffic aggregate at a site.
///
/// `bw_mbps` is the site-level (or app-at-site-level) combined bandwidth
/// series; the charged level is [`p95_daily_peak`].
pub fn nep_network_month(
    tariff: &NepTariff,
    bw_mbps: &[f64],
    interval_min: usize,
    city: &str,
    operator: Operator,
) -> f64 {
    let level = p95_daily_peak(bw_mbps, interval_min);
    level * tariff.bandwidth_unit_price(city, operator)
}

/// A monthly network bill with and without multi-tenant contention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContendedBill {
    /// Bill on an uncontended server, RMB (tariff-scaled).
    pub baseline_rmb: f64,
    /// Bill when the tenant only gets `bw_available` of the NIC, RMB.
    pub contended_rmb: f64,
    /// Fraction of intended traffic volume actually delivered.
    pub delivered_fraction: f64,
}

impl ContendedBill {
    /// Contended minus baseline: negative — the p95 level drops with the
    /// throttled series — which is exactly the trap: the bill shrinks
    /// while the tenant silently delivers less traffic.
    pub fn delta_rmb(&self) -> f64 {
        self.contended_rmb - self.baseline_rmb
    }
}

/// NEP monthly network bill of one aggregate under bandwidth contention.
///
/// The tenant's intended series `bw_mbps` is throttled to the fair share
/// `bw_available` ∈ (0, 1] of the nominal link (a provider-level
/// `tariff_scale` multiplies both unit prices; 1.0 for the paper's NEP).
/// With `bw_available = 1.0` the baseline and contended bills coincide.
pub fn nep_contended_network_month(
    tariff: &NepTariff,
    bw_mbps: &[f64],
    interval_min: usize,
    city: &str,
    operator: Operator,
    bw_available: f64,
    tariff_scale: f64,
) -> ContendedBill {
    assert!(bw_available > 0.0 && bw_available <= 1.0, "bw share out of range");
    assert!(tariff_scale > 0.0, "tariff scale must be positive");
    let baseline = nep_network_month(tariff, bw_mbps, interval_min, city, operator) * tariff_scale;
    let throttled: Vec<f64> = bw_mbps.iter().map(|&x| x * bw_available).collect();
    let contended =
        nep_network_month(tariff, &throttled, interval_min, city, operator) * tariff_scale;
    ContendedBill { baseline_rmb: baseline, contended_rmb: contended, delivered_fraction: bw_available }
}

/// Scale a bill computed over `days` of trace to a 30-day month — the
/// compact traces cover 2–4 weeks, but Table 3 quotes monthly costs.
pub fn scale_to_month(cost: f64, days: f64) -> f64 {
    assert!(days > 0.0, "trace must span time");
    cost * 30.0 / days
}

/// Cloud monthly network bill of one traffic aggregate under a given
/// model. The series is integrated at its native `interval_min`.
pub fn cloud_network_month(
    tariff: &CloudTariff,
    model: NetworkModel,
    bw_mbps: &[f64],
    interval_min: usize,
) -> f64 {
    let dt_hours = interval_min as f64 / 60.0;
    match model {
        NetworkModel::OnDemandByBandwidth => bw_mbps
            .iter()
            .map(|&x| tariff.on_demand_hour(x) * dt_hours)
            .sum(),
        NetworkModel::OnDemandByQuantity => {
            // Mbps over dt hours ⇒ GB: x·1e6/8 bytes/s · 3600·dt s / 1e9.
            let gb: f64 = bw_mbps
                .iter()
                .map(|&x| x * 1e6 / 8.0 * 3600.0 * dt_hours / 1e9)
                .sum();
            tariff.quantity(gb)
        }
        NetworkModel::PreReservedFixed => {
            // You must reserve for the observed peak.
            tariff.fixed_month(peak_max(bw_mbps))
        }
    }
}

/// An app's complete monthly NEP bill: hardware for every VM plus network
/// per site aggregate.
///
/// `per_site` maps a site's city name and operator to the app's combined
/// bandwidth series there.
pub fn nep_app_bill(
    tariff: &NepTariff,
    vm_specs: &[(u32, u32, u32)],
    per_site: &[(String, Operator, Vec<f64>)],
    interval_min: usize,
) -> (f64, f64) {
    let hardware: f64 = vm_specs
        .iter()
        .map(|&(c, m, d)| tariff.hardware_month(c, m, d))
        .sum();
    // The charged network level is the p95 daily peak — a *level*, not a
    // duration — so a shorter trace needs no day-scaling (unlike clouds'
    // integrated on-demand bills).
    let network: f64 = per_site
        .iter()
        .map(|(city, op, bw)| nep_network_month(tariff, bw, interval_min, city, *op))
        .sum();
    (hardware, network)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_peaks_basic() {
        // 4 samples/day at 360-min interval.
        let bw = [1.0, 5.0, 2.0, 3.0, 9.0, 1.0, 1.0, 1.0];
        let peaks = daily_peaks(&bw, 360);
        assert_eq!(peaks, vec![5.0, 9.0]);
    }

    #[test]
    fn p95_skips_top_days_of_a_month() {
        // 30 days: peaks 1..30 — skip round(3)=3 top values ⇒ 27.
        let mut bw = Vec::new();
        for d in 1..=30 {
            bw.extend(vec![d as f64; 4]);
        }
        let p = p95_daily_peak(&bw, 360);
        assert_eq!(p, 27.0, "4th highest of 30");
    }

    #[test]
    fn p95_short_series() {
        let p = p95_daily_peak(&[7.0, 3.0], 720);
        assert_eq!(p, 7.0);
        assert_eq!(p95_daily_peak(&[], 5), 0.0);
    }

    #[test]
    fn contended_bill_shrinks_with_the_fair_share() {
        let t = NepTariff::paper();
        let bw = vec![40.0; 288 * 30];
        let full = nep_contended_network_month(&t, &bw, 5, "Chengdu", Operator::Telecom, 1.0, 1.0);
        assert_eq!(full.baseline_rmb, full.contended_rmb, "no contention, no delta");
        assert_eq!(full.delta_rmb(), 0.0);
        let half = nep_contended_network_month(&t, &bw, 5, "Chengdu", Operator::Telecom, 0.5, 1.0);
        assert!((half.contended_rmb - half.baseline_rmb / 2.0).abs() < 1e-9);
        assert!(half.delta_rmb() < 0.0, "cheaper bill, but half the traffic delivered");
        assert_eq!(half.delivered_fraction, 0.5);
        // Provider tariff scale multiplies both sides.
        let scaled = nep_contended_network_month(&t, &bw, 5, "Chengdu", Operator::Telecom, 0.5, 0.8);
        assert!((scaled.baseline_rmb - 0.8 * half.baseline_rmb).abs() < 1e-9);
    }

    #[test]
    fn nep_bill_charges_peak_not_mean() {
        // Two apps with equal mean traffic but different peakiness: the
        // bursty one pays more on NEP (§4.5's education-app finding).
        let t = NepTariff::paper();
        let flat = vec![10.0; 288 * 30];
        let mut bursty = vec![1.0; 288 * 30];
        for d in 0..30 {
            for i in 0..29 {
                bursty[d * 288 + i] = 100.0; // ~2.4h burst/day
            }
        }
        let flat_mean: f64 = flat.iter().sum::<f64>() / flat.len() as f64;
        let bursty_mean: f64 = bursty.iter().sum::<f64>() / bursty.len() as f64;
        assert!((flat_mean - bursty_mean).abs() < 1.0);
        let c_flat = nep_network_month(&t, &flat, 5, "Chengdu", Operator::Telecom);
        let c_bursty = nep_network_month(&t, &bursty, 5, "Chengdu", Operator::Telecom);
        assert!(c_bursty > 5.0 * c_flat, "bursty {c_bursty} flat {c_flat}");
    }

    #[test]
    fn cloud_on_demand_integrates_over_time() {
        let t = CloudTariff::alicloud();
        // Constant 2 Mbps for 30 days at 5-min sampling ⇒ the appendix's
        // 90.72.
        let bw = vec![2.0; 288 * 30];
        let cost = cloud_network_month(&t, NetworkModel::OnDemandByBandwidth, &bw, 5);
        assert!((cost - 90.72).abs() < 0.01, "cost {cost}");
    }

    #[test]
    fn cloud_quantity_charges_volume() {
        let t = CloudTariff::alicloud();
        // 8 Mbps for one hour = 1 MB/s · 3600 s = 3.6 GB ⇒ 2.88 RMB.
        let bw = vec![8.0; 12];
        let cost = cloud_network_month(&t, NetworkModel::OnDemandByQuantity, &bw, 5);
        assert!((cost - 2.88).abs() < 0.01, "cost {cost}");
    }

    #[test]
    fn cloud_fixed_charges_reserved_peak() {
        let t = CloudTariff::huawei();
        let mut bw = vec![1.0; 100];
        bw[50] = 6.2; // forces a 7-Mbps reservation
        let cost = cloud_network_month(&t, NetworkModel::PreReservedFixed, &bw, 5);
        assert_eq!(cost, 275.0);
    }

    #[test]
    fn bursty_app_cheaper_on_cloud_than_nep() {
        // §4.5: apps with high temporal network variance (peak ≫ mean) can
        // be cheaper on cloud — NEP bills the peak, the cloud's on-demand
        // model bills the level-hours.
        let nep = NepTariff::paper();
        let ali = CloudTariff::alicloud();
        let mut bursty = vec![0.5; 288 * 30];
        for d in 0..30 {
            for i in 0..36 {
                bursty[d * 288 + i] = 60.0; // 3 h/day at 60 Mbps (≈10× mean)
            }
        }
        let nep_cost = nep_network_month(&nep, &bursty, 5, "Guangzhou", Operator::Telecom);
        let cloud_cost = cloud_network_month(&ali, NetworkModel::OnDemandByBandwidth, &bursty, 5);
        assert!(cloud_cost < nep_cost, "cloud {cloud_cost} vs NEP {nep_cost}");
    }

    #[test]
    fn steady_video_app_much_cheaper_on_nep() {
        // The headline §4.5 finding, for a steady bandwidth-heavy app.
        let nep = NepTariff::paper();
        let ali = CloudTariff::alicloud();
        let bw = vec![80.0; 288 * 30];
        let nep_cost = nep_network_month(&nep, &bw, 5, "Chengdu", Operator::Cmcc);
        let cloud_cost = cloud_network_month(&ali, NetworkModel::OnDemandByBandwidth, &bw, 5);
        assert!(cloud_cost > 5.0 * nep_cost, "cloud {cloud_cost} vs NEP {nep_cost}");
    }

    #[test]
    fn nep_app_bill_components() {
        let t = NepTariff::paper();
        let specs = [(8u32, 32u32, 100u32), (4, 16, 50)];
        let bw = vec![10.0; 288 * 30];
        let per_site = vec![("Chengdu".to_string(), Operator::Telecom, bw)];
        let (hw, net) = nep_app_bill(&t, &specs, &per_site, 5);
        // hardware: (8·65 + 32·20 + 100·0.35) + (4·65 + 16·20 + 50·0.35) = 1792.5
        assert!((hw - 1792.5).abs() < 0.01, "hw {hw}");
        // network: 10 Mbps · 25 = 250.
        assert!((net - 250.0).abs() < 0.01, "net {net}");
    }
}
