//! Dynamic cross-site VM migration.
//!
//! §4.2/§4.3 implications: "we envision that dynamic VM migration can
//! better balance the across-server resource usage", tempered by §5.2:
//! "it remains challenging because of the high migration delay and the
//! impacts on the app QoS". This module implements a threshold-triggered
//! rebalancer with that cost model:
//!
//! * a migration moves one VM from the most- to the least-loaded site
//!   among candidates within an RTT limit (moving far away would wreck
//!   the app's delay SLA);
//! * its cost = pre-copy transfer time (VM memory × dirty factor over the
//!   inter-site bandwidth) plus a stop-and-copy downtime;
//! * a migration budget caps how much disruption the operator accepts.

use edgescope_analysis::stats::coefficient_of_variation;
use edgescope_net::geo::GeoPoint;

/// A migratable VM: its home site and load contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedVm {
    /// Dense site index the VM currently lives on.
    pub site: usize,
    /// Load units this VM contributes to its site (e.g. mean CPU cores
    /// consumed, or Mbps).
    pub load: f64,
    /// Memory footprint in GB (drives migration cost).
    pub mem_gb: f64,
}

/// Migration policy configuration.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Rebalance only between sites whose RTT is below this (ms) — the
    /// §4.3 constraint that inter-site scheduling must not hurt delay.
    pub max_intersite_rtt_ms: f64,
    /// Stop migrating when the across-site load CV falls below this.
    pub target_cv: f64,
    /// Maximum number of migrations (operator's disruption budget).
    pub max_migrations: usize,
    /// Inter-site bandwidth available for migrations, Gbps.
    pub intersite_gbps: f64,
    /// Pre-copy amplification (dirty pages re-sent).
    pub dirty_factor: f64,
    /// Stop-and-copy downtime per migration, seconds.
    pub downtime_s: f64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            max_intersite_rtt_ms: 10.0,
            target_cv: 0.2,
            max_migrations: 200,
            intersite_gbps: 10.0,
            dirty_factor: 1.3,
            downtime_s: 0.5,
        }
    }
}

/// One executed migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationStep {
    /// Index into the VM slice.
    pub vm_idx: usize,
    /// Source site.
    pub from: usize,
    /// Destination site.
    pub to: usize,
    /// Total copy time, seconds.
    pub copy_s: f64,
}

/// Rebalancing outcome.
#[derive(Debug, Clone)]
pub struct MigrationOutcome {
    /// Across-site load CV before rebalancing.
    pub cv_before: f64,
    /// Across-site load CV after.
    pub cv_after: f64,
    /// Executed migrations, in order.
    pub steps: Vec<MigrationStep>,
    /// Total bytes moved, GB.
    pub moved_gb: f64,
    /// Total downtime inflicted, seconds.
    pub total_downtime_s: f64,
}

impl MigrationOutcome {
    /// Relative imbalance reduction.
    pub fn cv_reduction(&self) -> f64 {
        if self.cv_before == 0.0 {
            0.0
        } else {
            1.0 - self.cv_after / self.cv_before
        }
    }
}

/// The Fig. 4 RTT approximation between two sites.
fn intersite_rtt_ms(a: GeoPoint, b: GeoPoint) -> f64 {
    3.0 + 0.021 * a.distance_km(&b)
}

/// Demote NaN below every real load so it loses a `max_by` selection
/// (totalOrder alone would rank NaN above +inf and hand it the win).
fn nan_loses(x: f64) -> f64 {
    if x.is_nan() {
        f64::NEG_INFINITY
    } else {
        x
    }
}

/// Greedy threshold rebalancer: repeatedly move the largest movable VM
/// from the hottest site to the coolest reachable site, while it improves
/// balance.
pub fn rebalance(
    site_geo: &[GeoPoint],
    vms: &mut [SchedVm],
    cfg: &MigrationConfig,
) -> MigrationOutcome {
    let n_sites = site_geo.len();
    assert!(n_sites >= 2, "need at least two sites");
    let mut site_load = vec![0.0f64; n_sites];
    for vm in vms.iter() {
        assert!(vm.site < n_sites, "vm references unknown site");
        site_load[vm.site] += vm.load;
    }
    let cv_before = coefficient_of_variation(&site_load);
    let mut steps = Vec::new();
    let mut moved_gb = 0.0;

    for _ in 0..cfg.max_migrations {
        let cv = coefficient_of_variation(&site_load);
        if cv <= cfg.target_cv {
            break;
        }
        // Hottest and coolest-reachable site. Comparisons use
        // `total_cmp` so a NaN load can never panic the rebalancer;
        // under totalOrder NaN sorts *after* +inf, which already keeps
        // it out of the `min_by` below, but would let it win the hot
        // `max_by` — `nan_loses` demotes it to -inf so a poisoned site
        // is never chosen as the migration source either.
        let hot = (0..n_sites)
            .max_by(|&a, &b| nan_loses(site_load[a]).total_cmp(&nan_loses(site_load[b])))
            .unwrap();
        let cold = (0..n_sites)
            .filter(|&s| s != hot)
            .filter(|&s| intersite_rtt_ms(site_geo[hot], site_geo[s]) <= cfg.max_intersite_rtt_ms)
            .min_by(|&a, &b| site_load[a].total_cmp(&site_load[b]));
        let Some(cold) = cold else { break };
        let gap = site_load[hot] - site_load[cold];
        if gap <= 0.0 {
            break;
        }
        // Largest VM on the hot site that still improves balance (moving
        // more than the gap would overshoot).
        let candidate = vms
            .iter()
            .enumerate()
            .filter(|(_, v)| v.site == hot && v.load > 0.0 && v.load < gap)
            // The filter above already drops NaN loads (both comparisons
            // are false for NaN), so plain total_cmp suffices here.
            .max_by(|a, b| a.1.load.total_cmp(&b.1.load))
            .map(|(i, _)| i);
        let Some(vm_idx) = candidate else { break };

        let vm = vms[vm_idx];
        let copy_s = vm.mem_gb * cfg.dirty_factor * 8.0 / cfg.intersite_gbps;
        site_load[hot] -= vm.load;
        site_load[cold] += vm.load;
        vms[vm_idx].site = cold;
        moved_gb += vm.mem_gb * cfg.dirty_factor;
        steps.push(MigrationStep { vm_idx, from: hot, to: cold, copy_s });
    }

    let total_downtime_s = steps.len() as f64 * cfg.downtime_s;
    MigrationOutcome {
        cv_before,
        cv_after: coefficient_of_variation(&site_load),
        steps,
        moved_gb,
        total_downtime_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgescope_net::rng::log_normal_mean_cv;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A clustered metro: sites within ~30 km of each other.
    fn metro(n: usize) -> Vec<GeoPoint> {
        (0..n)
            .map(|i| GeoPoint::new(30.0 + 0.05 * i as f64, 114.0 + 0.07 * i as f64))
            .collect()
    }

    fn skewed_vms(rng: &mut StdRng, n_sites: usize, n_vms: usize) -> Vec<SchedVm> {
        (0..n_vms)
            .map(|_| {
                // Skew: most VMs land on the first two sites.
                let site = if rng.gen::<f64>() < 0.7 { rng.gen_range(0..2) } else { rng.gen_range(0..n_sites) };
                SchedVm {
                    site,
                    load: log_normal_mean_cv(rng, 4.0, 0.8),
                    mem_gb: [8.0, 16.0, 32.0, 64.0][rng.gen_range(0..4)],
                }
            })
            .collect()
    }

    #[test]
    fn rebalancing_reduces_cv() {
        let sites = metro(8);
        let mut rng = StdRng::seed_from_u64(1);
        let mut vms = skewed_vms(&mut rng, 8, 300);
        let out = rebalance(&sites, &mut vms, &MigrationConfig::default());
        assert!(out.cv_before > 0.5, "setup must be imbalanced: {}", out.cv_before);
        assert!(out.cv_after < out.cv_before * 0.5, "after {} before {}", out.cv_after, out.cv_before);
        assert!(!out.steps.is_empty());
        assert!(out.cv_reduction() > 0.5);
    }

    #[test]
    fn loads_conserved() {
        let sites = metro(6);
        let mut rng = StdRng::seed_from_u64(2);
        let mut vms = skewed_vms(&mut rng, 6, 200);
        let before: f64 = vms.iter().map(|v| v.load).sum();
        rebalance(&sites, &mut vms, &MigrationConfig::default());
        let after: f64 = vms.iter().map(|v| v.load).sum();
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn migration_budget_respected() {
        let sites = metro(8);
        let mut rng = StdRng::seed_from_u64(3);
        let mut vms = skewed_vms(&mut rng, 8, 400);
        let cfg = MigrationConfig { max_migrations: 5, ..Default::default() };
        let out = rebalance(&sites, &mut vms, &cfg);
        assert!(out.steps.len() <= 5);
        assert!((out.total_downtime_s - out.steps.len() as f64 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn rtt_limit_blocks_distant_rebalancing() {
        // Two far-apart clusters: the hot cluster cannot shed load to the
        // remote one under a tight RTT limit.
        let mut sites = metro(2);
        sites.push(GeoPoint::new(45.0, 125.0)); // ~1900 km away
        sites.push(GeoPoint::new(45.1, 125.1));
        let mut vms: Vec<SchedVm> = (0..50)
            .map(|_| SchedVm { site: 0, load: 2.0, mem_gb: 16.0 })
            .collect();
        let cfg = MigrationConfig { max_intersite_rtt_ms: 5.0, ..Default::default() };
        let out = rebalance(&sites, &mut vms, &cfg);
        for s in &out.steps {
            assert!(s.to <= 1, "must stay in the metro, moved to {}", s.to);
        }
    }

    #[test]
    fn copy_cost_scales_with_memory() {
        let cfg = MigrationConfig::default();
        let sites = metro(2);
        let mut small = vec![
            SchedVm { site: 0, load: 10.0, mem_gb: 8.0 },
            SchedVm { site: 0, load: 1.0, mem_gb: 8.0 },
            SchedVm { site: 1, load: 0.1, mem_gb: 8.0 },
        ];
        let out_small = rebalance(&sites, &mut small, &cfg);
        let mut large = vec![
            SchedVm { site: 0, load: 10.0, mem_gb: 64.0 },
            SchedVm { site: 0, load: 1.0, mem_gb: 64.0 },
            SchedVm { site: 1, load: 0.1, mem_gb: 64.0 },
        ];
        let out_large = rebalance(&sites, &mut large, &cfg);
        if let (Some(a), Some(b)) = (out_small.steps.first(), out_large.steps.first()) {
            assert!(b.copy_s > 7.0 * a.copy_s, "64 GB must cost ~8x the 8 GB copy");
        } else {
            panic!("both scenarios should migrate");
        }
    }

    #[test]
    fn already_balanced_noop() {
        let sites = metro(4);
        let mut vms: Vec<SchedVm> = (0..4)
            .flat_map(|s| (0..10).map(move |_| SchedVm { site: s, load: 1.0, mem_gb: 8.0 }))
            .collect();
        let out = rebalance(&sites, &mut vms, &MigrationConfig::default());
        assert!(out.steps.is_empty());
        assert_eq!(out.cv_before, out.cv_after);
    }
}
