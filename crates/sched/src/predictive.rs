//! Forecast-guided VM placement.
//!
//! §4.4's implication: "knowing the future CPU usage can guide VM
//! allocation … thus help avoid server malfunction or even crash induced
//! by CPU overload". The study: sites carry diurnal, phase-shifted
//! background loads; VMs arrive at a fixed hour and must be placed.
//!
//! * **Reactive** (≈ NEP's current policy) places on the site that is
//!   least loaded *right now* — and walks into the trap: a site that is
//!   idle at noon may peak at 21:00.
//! * **Holt-Winters** places on the site whose *forecast peak* over the
//!   next day is lowest, using only past observations.
//! * **Oracle** sees the true future (the upper bound).
//!
//! Outcome metric: overload (load beyond capacity) integrated over the
//! evaluation day.

use edgescope_analysis::stats::peak_max;
use edgescope_net::rng::log_normal_mean_cv;
use edgescope_predict::holt_winters::HoltWinters;
use rand::Rng;

/// How a placement decision looks into the future.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForecastPolicy {
    /// Least-loaded *now* (status quo).
    Reactive,
    /// Lowest Holt-Winters-forecast peak over the next day.
    HoltWinters,
    /// Lowest true future peak (upper bound).
    Oracle,
}

impl ForecastPolicy {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            ForecastPolicy::Reactive => "reactive (least-loaded now)",
            ForecastPolicy::HoltWinters => "Holt-Winters forecast",
            ForecastPolicy::Oracle => "oracle (true future)",
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone)]
pub struct PredictiveConfig {
    /// Number of candidate sites.
    pub n_sites: usize,
    /// History days before the placement instant.
    pub history_days: usize,
    /// VM arrivals to place.
    pub n_vms: usize,
    /// Load each VM adds (same unit as the background load; capacity 100).
    pub vm_load: f64,
    /// Hour of day at which the placements happen.
    pub placement_hour: usize,
    /// Per-sample noise of the background load.
    pub noise_cv: f64,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            n_sites: 12,
            history_days: 10,
            n_vms: 30,
            vm_load: 8.0,
            placement_hour: 12,
            noise_cv: 0.06,
        }
    }
}

/// Study outcome for one policy.
#[derive(Debug, Clone)]
pub struct PredictiveOutcome {
    /// The policy evaluated.
    pub policy: ForecastPolicy,
    /// Sum over the evaluation day of load beyond capacity (unit·hours).
    pub overload_unit_hours: f64,
    /// Site-hours above capacity.
    pub overloaded_hours: usize,
    /// Peak site load observed on the evaluation day.
    pub peak_load: f64,
    /// Extra VM load the policy placed on each site (deployment order).
    /// Exposed so callers — and the NaN regression tests — can check
    /// *where* the VMs went, not just the aggregate overload.
    pub placed_per_site: Vec<f64>,
}

/// Per-site capacity (percentage points of load).
const CAPACITY: f64 = 100.0;

/// Generate one site's hourly background load: a diurnal bump with a
/// per-site phase and level.
fn site_series(rng: &mut impl Rng, hours: usize, phase: f64, level: f64, noise_cv: f64) -> Vec<f64> {
    (0..hours)
        .map(|t| {
            let h = (t % 24) as f64;
            let mut d = (h - phase).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            let bump = (1.0 - (d / 7.0).powi(2)).max(0.0);
            let det = level * (0.25 + 0.75 * bump * bump);
            log_normal_mean_cv(rng, det.max(0.1), noise_cv)
        })
        .collect()
}

/// Run the study: same world, one outcome per policy.
pub fn placement_study(rng: &mut impl Rng, cfg: &PredictiveConfig) -> Vec<PredictiveOutcome> {
    assert!(cfg.n_sites >= 2, "need sites to choose between");
    let horizon_hours = (cfg.history_days + 1) * 24;
    // Phases spread over the day; levels vary: some sites are hot.
    let sites: Vec<Vec<f64>> = (0..cfg.n_sites)
        .map(|s| {
            let phase = 24.0 * s as f64 / cfg.n_sites as f64;
            let level = 40.0 + 50.0 * ((s * 7) % cfg.n_sites) as f64 / cfg.n_sites as f64;
            site_series(rng, horizon_hours, phase, level, cfg.noise_cv)
        })
        .collect();
    let t_place = cfg.history_days * 24 + cfg.placement_hour;

    // Pre-fit one Holt-Winters model per site on the history.
    let forecasts: Vec<Vec<f64>> = sites
        .iter()
        .map(|series| {
            let mut hw = HoltWinters::fit(&series[..t_place], 0.3, 0.02, 0.3, 24);
            // Multi-step forecast: iterate updates with own predictions.
            (0..24)
                .map(|_| {
                    let f = hw.forecast_next();
                    hw.update(f);
                    f
                })
                .collect()
        })
        .collect();

    placement_outcomes(&sites, &forecasts, t_place, cfg)
}

/// Place and evaluate every policy on an explicit world: per-site hourly
/// series (history plus evaluation day), per-site day-ahead forecasts,
/// and the placement instant `t_place` (hour index into the series).
///
/// This is the injectable core behind [`placement_study`] — tests drive
/// edge cases (a NaN forecast or load sample) straight into the
/// selection loop through it. Site scores compare with
/// [`f64::total_cmp`], under which NaN orders after `+inf`: a site whose
/// score degenerates to NaN can never win the minimum, and the
/// comparator can never panic.
pub fn placement_outcomes(
    sites: &[Vec<f64>],
    forecasts: &[Vec<f64>],
    t_place: usize,
    cfg: &PredictiveConfig,
) -> Vec<PredictiveOutcome> {
    assert_eq!(sites.len(), forecasts.len(), "one forecast per site");
    assert!(sites.len() >= 2, "need sites to choose between");
    let n_sites = sites.len();
    [ForecastPolicy::Reactive, ForecastPolicy::HoltWinters, ForecastPolicy::Oracle]
        .into_iter()
        .map(|policy| {
            // Extra VM load placed per site.
            let mut placed = vec![0.0f64; n_sites];
            for _ in 0..cfg.n_vms {
                let score = |s: usize| -> f64 {
                    let future = &sites[s][t_place..t_place + 24 - cfg.placement_hour % 24];
                    match policy {
                        ForecastPolicy::Reactive => sites[s][t_place] + placed[s],
                        // NaN-propagating peak: `f64::max` would launder a
                        // poisoned forecast into the most attractive score.
                        ForecastPolicy::HoltWinters => peak_max(&forecasts[s]) + placed[s],
                        ForecastPolicy::Oracle => peak_max(future) + placed[s],
                    }
                };
                let best = (0..n_sites)
                    .min_by(|&a, &b| score(a).total_cmp(&score(b)))
                    .unwrap();
                placed[best] += cfg.vm_load;
            }
            // Evaluate the following day.
            let mut overload = 0.0;
            let mut hours = 0;
            let mut peak: f64 = 0.0;
            for (s, series) in sites.iter().enumerate() {
                for t in t_place..t_place + 24 {
                    let load = series.get(t).copied().unwrap_or(0.0) + placed[s];
                    peak = peak.max(load);
                    if load > CAPACITY {
                        overload += load - CAPACITY;
                        hours += 1;
                    }
                }
            }
            PredictiveOutcome {
                policy,
                overload_unit_hours: overload,
                overloaded_hours: hours,
                peak_load: peak,
                placed_per_site: placed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(seed: u64) -> Vec<PredictiveOutcome> {
        let mut rng = StdRng::seed_from_u64(seed);
        placement_study(&mut rng, &PredictiveConfig::default())
    }

    #[test]
    fn forecasting_beats_reactive() {
        // §4.4's claim, averaged over several worlds to wash out noise.
        let mut reactive = 0.0;
        let mut hw = 0.0;
        let mut oracle = 0.0;
        for seed in 0..10 {
            let out = run(seed);
            reactive += out[0].overload_unit_hours;
            hw += out[1].overload_unit_hours;
            oracle += out[2].overload_unit_hours;
        }
        assert!(hw < reactive, "HW {hw} must beat reactive {reactive}");
        assert!(oracle <= hw * 1.05, "oracle {oracle} is the bound (hw {hw})");
    }

    #[test]
    fn outcome_fields_sane() {
        for o in run(3) {
            assert!(o.overload_unit_hours >= 0.0);
            assert!(o.peak_load > 0.0);
            assert!(o.overloaded_hours <= 12 * 24);
        }
    }

    #[test]
    fn deterministic() {
        let a = run(9);
        let b = run(9);
        assert_eq!(a[0].overload_unit_hours, b[0].overload_unit_hours);
        assert_eq!(a[1].overloaded_hours, b[1].overloaded_hours);
    }

    #[test]
    fn labels_distinct() {
        let out = run(1);
        assert_eq!(out.len(), 3);
        assert_ne!(out[0].policy.label(), out[1].policy.label());
        assert_ne!(out[1].policy.label(), out[2].policy.label());
    }
}
