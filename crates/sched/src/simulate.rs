//! The scheduling simulator: score a policy on delay vs. balance.
//!
//! Discrete time over one day (configurable interval). Each interval,
//! every city emits demand; the policy assigns it to sites; each site's
//! latency inflates with utilization (an M/M/1-style queueing factor on
//! top of the propagation delay); we record per-request delay and
//! per-site load. Outcome: mean and p95 delay, plus the across-site load
//! CV — exactly the §4.3 trade-off ("inter-site request scheduling may
//! increase the user-perceived network delay").

use crate::gslb::{CandidateTable, SchedulingPolicy};
use crate::requests::DemandModel;
use edgescope_analysis::stats::{coefficient_of_variation, percentile};
use edgescope_platform::deployment::Deployment;
use rand::Rng;

/// Result of one simulated day.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Label of the evaluated policy.
    pub policy_label: String,
    /// Mean request delay (one-way scheduling-relevant part), ms.
    pub mean_delay_ms: f64,
    /// 95th-percentile request delay, ms.
    pub p95_delay_ms: f64,
    /// Coefficient of variation of total per-site load (the §4.3 balance
    /// metric; lower is better).
    pub load_cv: f64,
    /// Peak single-site utilization observed (1.0 = at capacity).
    pub peak_utilization: f64,
    /// Fraction of intervals×sites above 80 % utilization (the paper's
    /// "safe threshold" from Fig. 13b).
    pub overload_fraction: f64,
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Interval length in minutes.
    pub interval_min: usize,
    /// Per-site service capacity in requests per interval.
    pub site_capacity: f64,
    /// Base service time added to every request, ms.
    pub service_ms: f64,
    /// Candidate sites considered per city.
    pub max_candidates: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { interval_min: 15, site_capacity: 4000.0, service_ms: 5.0, max_candidates: 10 }
    }
}

/// Queueing inflation factor at utilization `rho` (capped M/M/1 shape:
/// 1/(1-rho) up to 5x at/over capacity). Public because the campaign
/// engine (`core::engine`) reuses the same capped shape — the cap is
/// what keeps delays finite under regional failures.
pub fn queue_factor(rho: f64) -> f64 {
    if rho >= 0.8 {
        // Beyond the knee the model caps — overload shows up in the
        // overload_fraction metric instead of infinite delays.
        5.0
    } else {
        1.0 / (1.0 - rho)
    }
}

/// Simulate one day of demand under `policy`.
pub fn simulate_day(
    rng: &mut impl Rng,
    dep: &Deployment,
    demand: &DemandModel,
    policy: SchedulingPolicy,
    cfg: &SimConfig,
) -> SimOutcome {
    let cities: Vec<_> = demand.cities.iter().map(|c| c.city.geo()).collect();
    let table = CandidateTable::build(dep, &cities, cfg.max_candidates);
    let n_sites = dep.n_sites();
    let intervals = 24 * 60 / cfg.interval_min;

    let mut total_load = vec![0.0f64; n_sites];
    let mut rr = vec![0usize; cities.len()];
    let mut delays: Vec<f64> = Vec::new();
    let mut peak_util: f64 = 0.0;
    let mut overloaded = 0usize;
    let mut active_cells = 0usize;

    for step in 0..intervals {
        let h = step as f64 * cfg.interval_min as f64 / 60.0;
        let mut interval_load = vec![0.0f64; n_sites];
        // Demand assignment: per city, the interval's requests go through
        // the policy in one batch (DNS-granularity scheduling), with the
        // load snapshot from the interval as it fills.
        for city in 0..cities.len() {
            let rate = demand.city_rate(rng, city, h);
            if rate <= 0.0 {
                continue;
            }
            // Split the city's demand into a few DNS-resolution batches so
            // load-aware policies can react within the interval.
            let batches = 4;
            for _ in 0..batches {
                let portion = rate / batches as f64;
                let (site, extra_ms) = table.pick(policy, city, &interval_load, &mut rr);
                interval_load[site] += portion;
                let base_ms = cfg.service_ms
                    + crate::gslb::base_one_way_ms(table.per_city[city][0].1)
                    + extra_ms;
                let rho = interval_load[site] / cfg.site_capacity;
                delays.push(base_ms * queue_factor(rho.min(1.5)));
            }
        }
        for (s, &l) in interval_load.iter().enumerate() {
            total_load[s] += l;
            let util = l / cfg.site_capacity;
            peak_util = peak_util.max(util);
            if l > 0.0 {
                active_cells += 1;
                if util > 0.8 {
                    overloaded += 1;
                }
            }
        }
    }

    // Balance over sites that could ever receive traffic (candidate sets).
    let mut reachable = vec![false; n_sites];
    for cands in &table.per_city {
        for c in cands {
            reachable[c.0] = true;
        }
    }
    let loads: Vec<f64> = total_load
        .iter()
        .zip(&reachable)
        .filter(|(_, &r)| r)
        .map(|(&l, _)| l)
        .collect();

    SimOutcome {
        policy_label: policy.label(),
        mean_delay_ms: delays.iter().sum::<f64>() / delays.len().max(1) as f64,
        p95_delay_ms: if delays.is_empty() { 0.0 } else { percentile(&delays, 95.0) },
        load_cv: coefficient_of_variation(&loads),
        peak_utilization: peak_util,
        overload_fraction: overloaded as f64 / active_cells.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgescope_trace::app::AppCategory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world(seed: u64) -> (Deployment, DemandModel) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dep = Deployment::nep(&mut rng, 100);
        let demand = DemandModel::new(&mut rng, AppCategory::LiveStreaming, 60_000.0, 0.8);
        (dep, demand)
    }

    fn run(policy: SchedulingPolicy, seed: u64) -> SimOutcome {
        let (dep, demand) = world(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
        simulate_day(&mut rng, &dep, &demand, policy, &SimConfig::default())
    }

    #[test]
    fn load_aware_balances_better_than_nearest() {
        // The §4.3 thesis: the status quo leaves load unbalanced; a GSLB
        // reduces the cross-site CV.
        let nearest = run(SchedulingPolicy::NearestSite, 1);
        let gslb = run(SchedulingPolicy::LoadAware(8), 1);
        assert!(
            gslb.load_cv < nearest.load_cv * 0.8,
            "gslb CV {:.2} vs nearest {:.2}",
            gslb.load_cv,
            nearest.load_cv
        );
    }

    #[test]
    fn unconstrained_balancing_costs_delay() {
        // ... and the flip side: load-blind spreading adds delay.
        let nearest = run(SchedulingPolicy::NearestSite, 2);
        let rr = run(SchedulingPolicy::RoundRobinNearest(8), 2);
        assert!(rr.mean_delay_ms > nearest.mean_delay_ms, "rr must pay extra distance");
    }

    #[test]
    fn delay_constrained_is_the_sweet_spot() {
        // The paper's proposal: within a small delay budget, get most of
        // the balance with little delay.
        let nearest = run(SchedulingPolicy::NearestSite, 3);
        let constrained = run(SchedulingPolicy::DelayConstrained { budget_ms: 5.0 }, 3);
        assert!(constrained.load_cv < nearest.load_cv);
        assert!(
            constrained.mean_delay_ms < nearest.mean_delay_ms * 1.6,
            "delay {:.1} vs {:.1}",
            constrained.mean_delay_ms,
            nearest.mean_delay_ms
        );
    }

    #[test]
    fn outcome_fields_sane() {
        let o = run(SchedulingPolicy::LoadAware(4), 4);
        assert!(o.mean_delay_ms > 0.0);
        assert!(o.p95_delay_ms >= o.mean_delay_ms * 0.5);
        assert!(o.load_cv >= 0.0);
        assert!((0.0..=1.0).contains(&o.overload_fraction));
        assert!(o.peak_utilization >= 0.0);
    }

    #[test]
    fn deterministic() {
        let a = run(SchedulingPolicy::NearestSite, 5);
        let b = run(SchedulingPolicy::NearestSite, 5);
        assert_eq!(a.mean_delay_ms, b.mean_delay_ms);
        assert_eq!(a.load_cv, b.load_cv);
    }
}
