//! Serverless/FaaS vs. peak-provisioned IaaS (§5.2 "Decomposing edge
//! services").
//!
//! The paper: elastic paradigms "help facilitate flexible resource
//! management and fine-grained billing … However, such elasticity comes
//! at a price. For example, serverless computing has been criticized for
//! its slow cold start", which "can barely meet the requirements for
//! ultra-low-delay edge applications."
//!
//! The model: a demand series (requests per interval) served either by
//!
//! * **IaaS**: a fixed fleet provisioned for the peak (+ headroom),
//!   billed per core-month whether used or not — §4.2's observed
//!   over-provisioning;
//! * **FaaS**: per-request function instances; warm instances persist for
//!   a keep-alive window; requests that miss a warm instance pay a cold
//!   start. Billed per core-second actually used (plus keep-alive).

use edgescope_analysis::stats::{peak_max, percentile};

/// Elasticity study configuration.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Requests one core can serve per interval.
    pub req_per_core_interval: f64,
    /// IaaS provisioning headroom above the observed peak (e.g. 0.3).
    pub iaas_headroom: f64,
    /// RMB per core-month (NEP's 65).
    pub iaas_core_month: f64,
    /// FaaS price per core-second (cloud-like premium granularity).
    pub faas_core_second: f64,
    /// Cold-start latency, ms.
    pub cold_start_ms: f64,
    /// Warm-service latency, ms.
    pub warm_ms: f64,
    /// Keep-alive window in intervals: instances stay warm this long
    /// after serving.
    pub keepalive_intervals: usize,
    /// Interval length in seconds.
    pub interval_s: f64,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            req_per_core_interval: 1000.0,
            iaas_headroom: 0.3,
            iaas_core_month: 65.0,
            // 0.00011 RMB/core-second ≈ 285 RMB/core-month if always on —
            // the usual ~4x serverless premium over reserved cores.
            faas_core_second: 1.1e-4,
            cold_start_ms: 800.0,
            warm_ms: 8.0,
            keepalive_intervals: 2,
            interval_s: 900.0,
        }
    }
}

/// Outcome of serving one demand series both ways.
#[derive(Debug, Clone)]
pub struct ElasticOutcome {
    /// IaaS monthly cost (RMB) for the provisioned fleet.
    pub iaas_cost_month: f64,
    /// FaaS monthly cost (RMB) for the consumed core-time.
    pub faas_cost_month: f64,
    /// Fleet size IaaS had to provision (cores).
    pub iaas_cores: f64,
    /// Mean IaaS fleet utilization over the series.
    pub iaas_utilization: f64,
    /// FaaS p95 request latency, ms (includes cold starts).
    pub faas_p95_ms: f64,
    /// IaaS p95 request latency, ms (always warm).
    pub iaas_p95_ms: f64,
    /// Fraction of requests that hit a cold start.
    pub cold_fraction: f64,
}

impl ElasticOutcome {
    /// Cost ratio IaaS / FaaS (>1 ⇒ serverless cheaper).
    pub fn cost_ratio(&self) -> f64 {
        self.iaas_cost_month / self.faas_cost_month.max(1e-9)
    }
}

/// Evaluate a demand series (requests per interval).
pub fn evaluate(demand: &[f64], cfg: &ElasticConfig) -> ElasticOutcome {
    assert!(!demand.is_empty(), "need demand");
    assert!(cfg.req_per_core_interval > 0.0);
    let peak = peak_max(demand);
    let total_requests: f64 = demand.iter().sum();

    // --- IaaS ------------------------------------------------------------
    let iaas_cores = (peak * (1.0 + cfg.iaas_headroom) / cfg.req_per_core_interval).ceil();
    let mean_demand_cores = total_requests / demand.len() as f64 / cfg.req_per_core_interval;
    let iaas_utilization = if iaas_cores > 0.0 { mean_demand_cores / iaas_cores } else { 0.0 };
    // Scale the observed window to a 30-day month.
    let window_months = demand.len() as f64 * cfg.interval_s / (30.0 * 86_400.0);
    let iaas_cost_month = iaas_cores * cfg.iaas_core_month;

    // --- FaaS ------------------------------------------------------------
    let mut warm_cores: f64 = 0.0;
    let mut warm_ttl: usize = 0;
    let mut core_seconds = 0.0;
    let mut cold_requests = 0.0;
    let mut latencies: Vec<(f64, f64)> = Vec::new(); // (weight, ms)
    for &d in demand {
        let needed_cores = d / cfg.req_per_core_interval;
        let cold_cores = (needed_cores - warm_cores).max(0.0);
        // Requests served by newly-started instances pay the cold start.
        let cold_req = if needed_cores > 0.0 {
            d * (cold_cores / needed_cores)
        } else {
            0.0
        };
        cold_requests += cold_req;
        latencies.push((cold_req, cfg.cold_start_ms + cfg.warm_ms));
        latencies.push((d - cold_req, cfg.warm_ms));
        // Busy cores bill for the interval; keep-alive retains capacity.
        core_seconds += needed_cores.max(warm_cores.min(needed_cores)) * cfg.interval_s;
        if needed_cores >= warm_cores {
            warm_cores = needed_cores;
            warm_ttl = cfg.keepalive_intervals;
        } else if warm_ttl > 0 {
            warm_ttl -= 1;
            // Keep-alive cores idle but billed at a fraction (providers
            // charge memory-time for warm pools; 25 % is representative).
            core_seconds += (warm_cores - needed_cores) * cfg.interval_s * 0.25;
        } else {
            warm_cores = needed_cores;
        }
    }
    let faas_cost_window = core_seconds * cfg.faas_core_second;
    let faas_cost_month = faas_cost_window / window_months.max(1e-9);

    // Weighted p95 latency. `total_cmp` orders NaN after +inf (the
    // `analysis::stats` convention) so a NaN latency can never panic the
    // sort — it sinks to the tail where the 95th-percentile scan stops
    // before reaching it in any sane window.
    latencies.sort_by(|a, b| a.1.total_cmp(&b.1));
    let total_w: f64 = latencies.iter().map(|(w, _)| w).sum();
    let mut acc = 0.0;
    let mut faas_p95 = cfg.warm_ms;
    for (w, l) in &latencies {
        acc += w;
        if acc >= 0.95 * total_w {
            faas_p95 = *l;
            break;
        }
    }

    // IaaS latency: always-warm service with mild queueing near peak.
    let iaas_lat: Vec<f64> = demand
        .iter()
        .map(|&d| {
            let rho = (d / cfg.req_per_core_interval / iaas_cores.max(1.0)).min(0.79);
            cfg.warm_ms / (1.0 - rho)
        })
        .collect();

    ElasticOutcome {
        iaas_cost_month,
        faas_cost_month,
        iaas_cores,
        iaas_utilization,
        faas_p95_ms: faas_p95,
        iaas_p95_ms: percentile(&iaas_lat, 95.0),
        cold_fraction: cold_requests / total_requests.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diurnal demand series: `days` days of 15-min intervals with an
    /// evening peak.
    fn diurnal(days: usize, peak: f64, trough: f64) -> Vec<f64> {
        (0..days * 96)
            .map(|i| {
                let h = (i % 96) as f64 / 4.0;
                if (19.0..23.0).contains(&h) {
                    peak
                } else {
                    trough
                }
            })
            .collect()
    }

    #[test]
    fn serverless_cheaper_for_peaky_interactive_apps() {
        // The §5.2 promise: fine-grained billing beats peak provisioning
        // when peak >> mean.
        let demand = diurnal(30, 50_000.0, 2_000.0);
        let out = evaluate(&demand, &ElasticConfig::default());
        assert!(out.cost_ratio() > 1.0, "IaaS {} vs FaaS {}", out.iaas_cost_month, out.faas_cost_month);
        assert!(out.iaas_utilization < 0.4, "IaaS over-provisioned: {}", out.iaas_utilization);
    }

    #[test]
    fn but_serverless_breaks_the_delay_sla() {
        // ... and the §5.2 caveat: cold starts wreck the tail.
        let demand = diurnal(30, 50_000.0, 2_000.0);
        let out = evaluate(&demand, &ElasticConfig::default());
        assert!(out.faas_p95_ms > 100.0, "p95 {} must show cold starts", out.faas_p95_ms);
        assert!(out.iaas_p95_ms < 50.0, "IaaS stays warm: {}", out.iaas_p95_ms);
        assert!(out.cold_fraction > 0.0);
    }

    #[test]
    fn flat_demand_favours_iaas() {
        // Surveillance-style steady load: reserved cores cost less than
        // the serverless premium.
        let demand = vec![30_000.0; 96 * 30];
        let out = evaluate(&demand, &ElasticConfig::default());
        assert!(out.cost_ratio() < 1.0, "flat load: IaaS {} vs FaaS {}", out.iaas_cost_month, out.faas_cost_month);
        assert!(out.iaas_utilization > 0.6);
        assert!(out.cold_fraction < 0.01, "steady load keeps everything warm");
    }

    #[test]
    fn keepalive_reduces_cold_starts() {
        let demand = diurnal(10, 20_000.0, 1_000.0);
        let short = evaluate(&demand, &ElasticConfig { keepalive_intervals: 0, ..Default::default() });
        let long = evaluate(&demand, &ElasticConfig { keepalive_intervals: 8, ..Default::default() });
        assert!(long.cold_fraction <= short.cold_fraction);
    }

    #[test]
    fn costs_positive_and_fleet_covers_peak() {
        let demand = diurnal(7, 10_000.0, 500.0);
        let cfg = ElasticConfig::default();
        let out = evaluate(&demand, &cfg);
        assert!(out.iaas_cost_month > 0.0 && out.faas_cost_month > 0.0);
        assert!(out.iaas_cores * cfg.req_per_core_interval >= 10_000.0);
    }
}
