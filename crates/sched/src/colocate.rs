//! Colocation study: the paper's sales-ratio placement policy vs a
//! contention-aware variant, scored under a multi-tenant contention model.
//!
//! §2's documented policy minimizes sales ratio and observed CPU usage —
//! criteria that ignore *how many neighbours* a tenant gets. Under the
//! [`Contention`] model (CPU steal and bandwidth sharing grow with
//! colocation density) that blind spot is measurable: this module fills
//! the same deployment with the same VM request sequence under both
//! policies and reports what each tenant population experiences.

use edgescope_analysis::stats::percentile;
use edgescope_platform::contention::Contention;
use edgescope_platform::deployment::Deployment;
use edgescope_platform::placement::{PlacementPolicy, Scope, SubscriptionRequest};
use edgescope_platform::resources::VmSpec;
use rand::Rng;

/// Config of one colocation study.
#[derive(Debug, Clone)]
pub struct ColocationConfig {
    /// The contention model scoring the resulting packings.
    pub contention: Contention,
    /// VMs to place (one subscription request each, anywhere-scope).
    pub n_vms: usize,
    /// A VM whose CPU-steal factor exceeds this is counted degraded
    /// (default 1.15 — ≥15% compute inflation).
    pub degraded_threshold: f64,
}

impl Default for ColocationConfig {
    fn default() -> Self {
        ColocationConfig {
            contention: Contention::moderate(),
            n_vms: 400,
            degraded_threshold: 1.15,
        }
    }
}

/// What one policy's tenant population experiences.
#[derive(Debug, Clone)]
pub struct ColocationOutcome {
    /// Policy label (`sales-ratio` / `contention-aware`).
    pub policy: &'static str,
    /// VMs actually placed (identical request sequences, so differences
    /// mean one policy ran out of feasible servers earlier).
    pub placed: usize,
    /// Mean CPU-steal factor across placed VMs (1.0 = no interference).
    pub mean_steal: f64,
    /// 95th-percentile CPU-steal factor.
    pub p95_steal: f64,
    /// Fraction of VMs whose steal factor exceeds the degraded threshold.
    pub degraded_fraction: f64,
    /// Mean fraction of nominal bandwidth available to a VM.
    pub mean_bw_share: f64,
    /// Mean colocation density over servers that host at least one VM.
    pub mean_density: f64,
}

/// Per-VM steal factors of a packed deployment under `contention`.
fn vm_steal_factors(dep: &Deployment, contention: &Contention) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for site in &dep.sites {
        for server in &site.servers {
            let d = server.colocation_density();
            let steal = contention.cpu_steal_factor(d);
            let bw = contention.bw_available(d);
            for _ in server.vms() {
                out.push((steal, bw));
            }
        }
    }
    out
}

/// Mean colocation density over occupied servers.
fn occupied_density(dep: &Deployment) -> f64 {
    let occupied: Vec<f64> = dep
        .sites
        .iter()
        .flat_map(|s| &s.servers)
        .filter(|s| !s.vms().is_empty())
        .map(|s| s.colocation_density())
        .collect();
    if occupied.is_empty() {
        return 0.0;
    }
    occupied.iter().sum::<f64>() / occupied.len() as f64
}

/// Score one packed deployment.
fn outcome(
    policy: &'static str,
    dep: &Deployment,
    placed: usize,
    cfg: &ColocationConfig,
) -> ColocationOutcome {
    let per_vm = vm_steal_factors(dep, &cfg.contention);
    if per_vm.is_empty() {
        return ColocationOutcome {
            policy,
            placed,
            mean_steal: 1.0,
            p95_steal: 1.0,
            degraded_fraction: 0.0,
            mean_bw_share: 1.0,
            mean_density: 0.0,
        };
    }
    let n = per_vm.len() as f64;
    let steals: Vec<f64> = per_vm.iter().map(|&(s, _)| s).collect();
    ColocationOutcome {
        policy,
        placed,
        mean_steal: steals.iter().sum::<f64>() / n,
        p95_steal: percentile(&steals, 95.0),
        degraded_fraction: steals.iter().filter(|&&s| s > cfg.degraded_threshold).count() as f64 / n,
        mean_bw_share: per_vm.iter().map(|&(_, b)| b).sum::<f64>() / n,
        mean_density: occupied_density(dep),
    }
}

/// Fill a clone of `dep` with `specs` (one anywhere-scope request per VM)
/// under `policy`, returning the packed deployment and how many landed.
fn fill(dep: &Deployment, specs: &[VmSpec], policy: &PlacementPolicy) -> (Deployment, usize) {
    let mut working = dep.clone();
    let mut next_vm = 0u32;
    let mut placed = 0usize;
    for &spec in specs {
        let req = SubscriptionRequest { scope: Scope::Anywhere, count: 1, spec };
        if policy.place(&mut working, &req, &mut next_vm).is_ok() {
            placed += 1;
        }
    }
    (working, placed)
}

/// Run the study: the same world and VM sequence, one outcome per policy
/// (`sales-ratio` first, then `contention-aware`).
///
/// All randomness (the VM spec sequence) is drawn up front from `rng`, so
/// both policies see identical requests and the result is a pure function
/// of `(rng stream, dep, cfg)` — safe under the `--jobs` byte-identity
/// contract.
pub fn colocation_study(
    rng: &mut impl Rng,
    dep: &Deployment,
    cfg: &ColocationConfig,
) -> Vec<ColocationOutcome> {
    assert!(cfg.n_vms > 0, "need VMs to place");
    assert!(cfg.degraded_threshold >= 1.0, "threshold is a steal factor");
    // The §2 subscription shapes: small web/app boxes up to mid-size
    // transcoder VMs, bandwidth irrelevant to packing.
    let menu = [
        VmSpec::new(2, 8, 50, 10.0),
        VmSpec::new(4, 16, 100, 20.0),
        VmSpec::new(8, 32, 100, 50.0),
        VmSpec::new(16, 64, 200, 100.0),
    ];
    let specs: Vec<VmSpec> = (0..cfg.n_vms).map(|_| menu[rng.gen_range(0..menu.len())]).collect();

    let (packed_sales, placed_sales) = fill(dep, &specs, &PlacementPolicy::default());
    let (packed_aware, placed_aware) = fill(dep, &specs, &PlacementPolicy::contention_aware());
    vec![
        outcome("sales-ratio", &packed_sales, placed_sales, cfg),
        outcome("contention-aware", &packed_aware, placed_aware, cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world(seed: u64) -> Deployment {
        let mut rng = StdRng::seed_from_u64(seed);
        // Small servers so colocation density actually builds up.
        Deployment::nep_custom(&mut rng, 12, 4, 10)
    }

    #[test]
    fn study_is_deterministic() {
        let dep = world(3);
        let cfg = ColocationConfig::default();
        let a = colocation_study(&mut StdRng::seed_from_u64(9), &dep, &cfg);
        let b = colocation_study(&mut StdRng::seed_from_u64(9), &dep, &cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.mean_steal, y.mean_steal);
            assert_eq!(x.degraded_fraction, y.degraded_fraction);
        }
    }

    #[test]
    fn contention_aware_never_worse_on_steal() {
        // Same world, same VMs: dodging dense servers cannot increase the
        // population's mean steal when both policies place everything.
        let dep = world(5);
        let cfg = ColocationConfig { n_vms: 300, ..ColocationConfig::default() };
        let out = colocation_study(&mut StdRng::seed_from_u64(11), &dep, &cfg);
        assert_eq!(out.len(), 2);
        let (sales, aware) = (&out[0], &out[1]);
        assert_eq!(sales.policy, "sales-ratio");
        assert_eq!(aware.policy, "contention-aware");
        assert_eq!(sales.placed, aware.placed, "identical request sequences");
        assert!(
            aware.mean_steal <= sales.mean_steal + 1e-9,
            "aware {} vs sales {}",
            aware.mean_steal,
            sales.mean_steal
        );
    }

    #[test]
    fn contention_off_reports_identity_factors() {
        let dep = world(6);
        let cfg = ColocationConfig { contention: Contention::off(), ..Default::default() };
        for o in colocation_study(&mut StdRng::seed_from_u64(2), &dep, &cfg) {
            assert_eq!(o.mean_steal, 1.0);
            assert_eq!(o.p95_steal, 1.0);
            assert_eq!(o.degraded_fraction, 0.0);
            assert_eq!(o.mean_bw_share, 1.0);
        }
    }
}
