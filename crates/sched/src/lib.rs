#![warn(missing_docs)]
//! # edgescope-sched
//!
//! The paper's §5 future-work systems, implemented and evaluated:
//!
//! * [`requests`] — an end-user demand model: per-city request rates
//!   following the app categories' diurnal profiles, with the geo-skew
//!   §4.1 observes;
//! * [`gslb`] — cross-site request scheduling (§5.2 "Cross-sites traffic
//!   scheduling"): the status-quo nearest-site policy, round-robin over
//!   the k nearest, classic load-aware GSLB, and the delay-constrained
//!   load-aware policy the paper argues for ("a load balancer is useful
//!   in edge platforms as the network delay between nearby edge sites are
//!   already small", §4.3);
//! * [`simulate`] — a discrete-time simulator scoring a scheduling policy
//!   on the delay-vs-balance trade-off;
//! * [`migration`] — threshold-triggered cross-site VM migration with the
//!   §5.2 cost model (downtime = VM memory / inter-site bandwidth, plus
//!   QoS impact during copy);
//! * [`elastic`] — serverless/FaaS vs. peak-provisioned IaaS (§5.2
//!   "Decomposing edge services"): cold-start-afflicted per-request
//!   functions against always-on VMs, on cost and tail latency;
//! * [`predictive`] — forecast-guided VM placement (§4.4's implication:
//!   "knowing the future CPU usage can guide VM allocation and
//!   migration, thus help avoid server malfunction or even crash"):
//!   reactive vs. Holt-Winters vs. oracle placement under diurnal,
//!   phase-shifted site loads;
//! * [`colocate`] — the documented sales-ratio policy vs a
//!   contention-aware variant, scored under the multi-tenant
//!   CPU-steal/bandwidth-sharing model of
//!   `edgescope_platform::contention`.
//!
//! ## Implemented vs. omitted
//! These are evaluation models at the same altitude as the paper's own
//! what-if discussion — request-level queueing (M/M/1-style latency
//! inflation under load) rather than packet-level simulation; migration
//! as pre-copy with a constant dirty-page factor; serverless cold starts
//! as a fixed distribution. Omitted: live-migration page-fault dynamics
//! and function snapshotting internals — no §5 claim depends on them.

pub mod colocate;
pub mod elastic;
pub mod gslb;
pub mod migration;
pub mod predictive;
pub mod requests;
pub mod simulate;

pub use colocate::{colocation_study, ColocationConfig, ColocationOutcome};
pub use elastic::{ElasticConfig, ElasticOutcome};
pub use gslb::SchedulingPolicy;
pub use migration::{MigrationConfig, MigrationOutcome};
pub use predictive::{placement_outcomes, placement_study, ForecastPolicy, PredictiveOutcome};
pub use requests::DemandModel;
pub use simulate::{simulate_day, SimOutcome};
