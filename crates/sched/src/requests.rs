//! End-user demand model.
//!
//! Requests originate in cities, with volume proportional to population
//! times a category-shaped diurnal profile (§4.4: "services deployed on
//! edges follow end users' daily activities") and a per-city
//! attractiveness factor producing the geo-skew of §4.1.

use edgescope_net::rng::log_normal_mean_cv;
use edgescope_platform::geo_china::{City, CITIES};
use edgescope_trace::app::AppCategory;
use rand::Rng;

/// Per-city demand descriptor.
#[derive(Debug, Clone)]
pub struct CityDemand {
    /// The originating city.
    pub city: City,
    /// Base requests per interval at the diurnal peak.
    pub peak_rps: f64,
}

/// The demand model for one application.
#[derive(Debug, Clone)]
pub struct DemandModel {
    /// The application whose diurnal profile shapes demand.
    pub category: AppCategory,
    /// Per-city demand descriptors.
    pub cities: Vec<CityDemand>,
    /// Relative per-interval noise.
    pub noise_cv: f64,
}

impl DemandModel {
    /// Build a demand model over the gazetteer: per-city peak demand is
    /// population-proportional with a log-normal attractiveness factor
    /// (geo-skew; `skew_cv` around 0.8 reproduces §4.1's "highly depends
    /// on the geolocations").
    pub fn new(
        rng: &mut impl Rng,
        category: AppCategory,
        total_peak_rps: f64,
        skew_cv: f64,
    ) -> Self {
        assert!(total_peak_rps > 0.0, "demand must be positive");
        let mut cities: Vec<CityDemand> = CITIES
            .iter()
            .map(|c| {
                let attract = log_normal_mean_cv(rng, 1.0, skew_cv);
                CityDemand { city: *c, peak_rps: c.population_m * attract }
            })
            .collect();
        let sum: f64 = cities.iter().map(|c| c.peak_rps).sum();
        for c in &mut cities {
            c.peak_rps *= total_peak_rps / sum;
        }
        DemandModel { category, cities, noise_cv: 0.15 }
    }

    /// Demand of one city at hour-of-day `h` (requests per interval).
    pub fn city_rate(&self, rng: &mut impl Rng, city_idx: usize, h: f64) -> f64 {
        let base = self.cities[city_idx].peak_rps * self.category.diurnal(h);
        if base <= 0.0 {
            return 0.0;
        }
        log_normal_mean_cv(rng, base, self.noise_cv)
    }

    /// Total demand across cities at hour `h` (expected, noise-free).
    pub fn total_rate(&self, h: f64) -> f64 {
        self.cities.iter().map(|c| c.peak_rps).sum::<f64>() * self.category.diurnal(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> DemandModel {
        let mut rng = StdRng::seed_from_u64(seed);
        DemandModel::new(&mut rng, AppCategory::LiveStreaming, 10_000.0, 0.8)
    }

    #[test]
    fn peak_demand_normalized() {
        let m = model(1);
        let sum: f64 = m.cities.iter().map(|c| c.peak_rps).sum();
        assert!((sum - 10_000.0).abs() < 1e-6);
        assert_eq!(m.cities.len(), CITIES.len());
    }

    #[test]
    fn diurnal_shape_respected() {
        let m = model(2);
        // Live streaming peaks in the evening (21:00) and bottoms early
        // morning.
        assert!(m.total_rate(21.0) > 5.0 * m.total_rate(5.0));
    }

    #[test]
    fn geo_skew_present() {
        let m = model(3);
        let mut rates: Vec<f64> = m.cities.iter().map(|c| c.peak_rps).collect();
        rates.sort_by(|a, b| b.total_cmp(a));
        // Top city clearly above the median city.
        assert!(rates[0] > 5.0 * rates[rates.len() / 2]);
    }

    #[test]
    fn city_rate_nonnegative_and_noisy() {
        let m = model(4);
        let mut rng = StdRng::seed_from_u64(5);
        for h in 0..24 {
            let r = m.city_rate(&mut rng, 0, h as f64);
            assert!(r >= 0.0);
        }
    }
}
