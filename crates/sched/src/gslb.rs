//! Cross-site request scheduling policies.
//!
//! §2: "edge customers typically route user requests to their nearby
//! sites based on DNS or HTTP 302" — the nearest-site status quo, which
//! §4.3 shows "often fail\[s\] to deliver" load balance. The alternatives
//! follow the paper's discussion: spreading over the k nearest sites,
//! classic GSLB (pick the least-loaded candidate), and the
//! delay-constrained load-aware policy it advocates — balance only among
//! sites whose extra delay stays within a budget, exploiting Fig. 4's
//! observation that several sites sit within a few ms of each other.

use edgescope_platform::deployment::Deployment;
use edgescope_net::geo::GeoPoint;

/// A request-scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulingPolicy {
    /// Route every request to the geographically nearest site (status
    /// quo).
    NearestSite,
    /// Spread round-robin over the `k` nearest sites, load-blind.
    RoundRobinNearest(usize),
    /// Among the `k` nearest sites, pick the currently least-loaded.
    LoadAware(usize),
    /// Among sites within `budget_ms` of extra one-way delay vs. the
    /// nearest, pick the least-loaded (the paper's proposal).
    DelayConstrained {
        /// Maximum extra one-way delay accepted vs. the nearest site.
        budget_ms: f64,
    },
}

impl SchedulingPolicy {
    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            SchedulingPolicy::NearestSite => "nearest-site (status quo)".into(),
            SchedulingPolicy::RoundRobinNearest(k) => format!("round-robin over {k} nearest"),
            SchedulingPolicy::LoadAware(k) => format!("load-aware over {k} nearest"),
            SchedulingPolicy::DelayConstrained { budget_ms } => {
                format!("delay-constrained load-aware (+{budget_ms} ms)")
            }
        }
    }
}

/// Pre-computed per-city candidate sets: site indices ordered by
/// distance, with the approximate extra one-way delay vs. the nearest.
#[derive(Debug, Clone)]
pub struct CandidateTable {
    /// Per city: `(site index, distance km, extra_delay_ms)`.
    pub per_city: Vec<Vec<(usize, f64, f64)>>,
}

/// Approximate one-way WAN delay between a user and a site at `d` km —
/// the Fig. 4 slope (half of the RTT model's 0.021 ms/km plus a base).
pub fn base_one_way_ms(d_km: f64) -> f64 {
    1.5 + 0.0105 * d_km
}

fn one_way_ms(d_km: f64) -> f64 {
    base_one_way_ms(d_km)
}

impl CandidateTable {
    /// Build candidate sets of up to `max_candidates` sites per city.
    pub fn build(dep: &Deployment, cities: &[GeoPoint], max_candidates: usize) -> Self {
        assert!(max_candidates >= 1, "need candidates");
        let per_city = cities
            .iter()
            .map(|geo| {
                let ordered = dep.sites_by_distance(*geo);
                let nearest_d = ordered[0].1;
                ordered
                    .into_iter()
                    .take(max_candidates)
                    .map(|(idx, d)| (idx, d, one_way_ms(d) - one_way_ms(nearest_d)))
                    .collect()
            })
            .collect();
        CandidateTable { per_city }
    }

    /// Pick a site for one request from `city_idx` under `policy`.
    ///
    /// `loads` is the current per-site load (same index space as the
    /// deployment), `rr_state` a per-city round-robin cursor. Returns the
    /// site index and the extra one-way delay vs. the nearest site.
    ///
    /// Load comparisons use [`f64::total_cmp`] (the same documented NaN
    /// convention as `edgescope_analysis::stats`): a NaN load orders
    /// after `+inf`, so a site whose load tracker was corrupted can never
    /// win a least-loaded selection — and the comparator can never panic
    /// mid-request.
    pub fn pick(
        &self,
        policy: SchedulingPolicy,
        city_idx: usize,
        loads: &[f64],
        rr_state: &mut [usize],
    ) -> (usize, f64) {
        let cands = &self.per_city[city_idx];
        match policy {
            SchedulingPolicy::NearestSite => (cands[0].0, 0.0),
            SchedulingPolicy::RoundRobinNearest(k) => {
                let k = k.clamp(1, cands.len());
                let c = cands[rr_state[city_idx] % k];
                rr_state[city_idx] = rr_state[city_idx].wrapping_add(1);
                (c.0, c.2)
            }
            SchedulingPolicy::LoadAware(k) => {
                let k = k.clamp(1, cands.len());
                let best = cands[..k]
                    .iter()
                    .min_by(|a, b| loads[a.0].total_cmp(&loads[b.0]))
                    .unwrap();
                (best.0, best.2)
            }
            SchedulingPolicy::DelayConstrained { budget_ms } => {
                let best = cands
                    .iter()
                    .filter(|c| c.2 <= budget_ms)
                    .min_by(|a, b| loads[a.0].total_cmp(&loads[b.0]))
                    .unwrap_or(&cands[0]);
                (best.0, best.2)
            }
        }
    }

    /// Like [`CandidateTable::pick`], but skipping sites for which
    /// `available` returns `false` (drained or blackholed by an active
    /// event). Returns `None` when *no* candidate for the city is
    /// available — the caller treats the request as rejected (admission
    /// control under regional failure) instead of panicking.
    ///
    /// Unavailable candidates are filtered *before* the policy applies,
    /// so e.g. `NearestSite` falls over to the nearest *available* site
    /// — exactly the DNS failover behaviour a real GSLB exhibits.
    pub fn pick_available(
        &self,
        policy: SchedulingPolicy,
        city_idx: usize,
        loads: &[f64],
        rr_state: &mut [usize],
        available: impl Fn(usize) -> bool,
    ) -> Option<(usize, f64)> {
        let cands: Vec<(usize, f64, f64)> = self.per_city[city_idx]
            .iter()
            .filter(|c| available(c.0))
            .copied()
            .collect();
        if cands.is_empty() {
            return None;
        }
        Some(match policy {
            SchedulingPolicy::NearestSite => (cands[0].0, cands[0].2),
            SchedulingPolicy::RoundRobinNearest(k) => {
                let k = k.clamp(1, cands.len());
                let c = cands[rr_state[city_idx] % k];
                rr_state[city_idx] = rr_state[city_idx].wrapping_add(1);
                (c.0, c.2)
            }
            SchedulingPolicy::LoadAware(k) => {
                let k = k.clamp(1, cands.len());
                let best = cands[..k]
                    .iter()
                    .min_by(|a, b| loads[a.0].total_cmp(&loads[b.0]))
                    .unwrap();
                (best.0, best.2)
            }
            SchedulingPolicy::DelayConstrained { budget_ms } => {
                let best = cands
                    .iter()
                    .filter(|c| c.2 <= budget_ms)
                    .min_by(|a, b| loads[a.0].total_cmp(&loads[b.0]))
                    .unwrap_or(&cands[0]);
                (best.0, best.2)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgescope_platform::geo_china::CITIES;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> (Deployment, CandidateTable) {
        let mut rng = StdRng::seed_from_u64(1);
        let dep = Deployment::nep(&mut rng, 80);
        let cities: Vec<GeoPoint> = CITIES.iter().take(10).map(|c| c.geo()).collect();
        let t = CandidateTable::build(&dep, &cities, 8);
        (dep, t)
    }

    #[test]
    fn candidates_ordered_by_distance() {
        let (_, t) = table();
        for cands in &t.per_city {
            assert_eq!(cands.len(), 8);
            for w in cands.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
            assert_eq!(cands[0].2, 0.0, "nearest has zero extra delay");
            assert!(cands.iter().all(|c| c.2 >= 0.0));
        }
    }

    #[test]
    fn nearest_site_always_first_candidate() {
        let (dep, t) = table();
        let loads = vec![0.0; dep.n_sites()];
        let mut rr = vec![0usize; t.per_city.len()];
        for city in 0..t.per_city.len() {
            let (site, extra) = t.pick(SchedulingPolicy::NearestSite, city, &loads, &mut rr);
            assert_eq!(site, t.per_city[city][0].0);
            assert_eq!(extra, 0.0);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let (dep, t) = table();
        let loads = vec![0.0; dep.n_sites()];
        let mut rr = vec![0usize; t.per_city.len()];
        let picks: Vec<usize> = (0..6)
            .map(|_| t.pick(SchedulingPolicy::RoundRobinNearest(3), 0, &loads, &mut rr).0)
            .collect();
        assert_eq!(picks[0], picks[3]);
        assert_eq!(picks[1], picks[4]);
        assert_eq!(picks[2], picks[5]);
        let mut uniq = picks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() >= 2, "must actually spread");
    }

    #[test]
    fn load_aware_avoids_hot_site() {
        let (dep, t) = table();
        let mut loads = vec![0.0; dep.n_sites()];
        let hot = t.per_city[0][0].0;
        loads[hot] = 1e9;
        let mut rr = vec![0usize; t.per_city.len()];
        let (site, _) = t.pick(SchedulingPolicy::LoadAware(4), 0, &loads, &mut rr);
        assert_ne!(site, hot);
    }

    #[test]
    fn delay_constrained_respects_budget() {
        let (dep, t) = table();
        let mut loads = vec![0.0; dep.n_sites()];
        // Overload everything close; policy must still not violate the
        // budget.
        for c in &t.per_city[0] {
            if c.2 <= 2.0 {
                loads[c.0] = 1e9;
            }
        }
        let mut rr = vec![0usize; t.per_city.len()];
        let (site, extra) =
            t.pick(SchedulingPolicy::DelayConstrained { budget_ms: 2.0 }, 0, &loads, &mut rr);
        assert!(extra <= 2.0, "extra {extra}");
        // It must be one of the in-budget candidates (even if loaded).
        assert!(t.per_city[0].iter().any(|c| c.0 == site && c.2 <= 2.0));
    }

    #[test]
    fn zero_budget_degenerates_to_nearest() {
        let (dep, t) = table();
        let loads = vec![1.0; dep.n_sites()];
        let mut rr = vec![0usize; t.per_city.len()];
        let (site, _) =
            t.pick(SchedulingPolicy::DelayConstrained { budget_ms: 0.0 }, 2, &loads, &mut rr);
        assert_eq!(site, t.per_city[2][0].0);
    }

    #[test]
    fn pick_available_fails_over_to_nearest_available() {
        let (dep, t) = table();
        let loads = vec![0.0; dep.n_sites()];
        let mut rr = vec![0usize; t.per_city.len()];
        let nearest = t.per_city[0][0].0;
        let (site, extra) = t
            .pick_available(SchedulingPolicy::NearestSite, 0, &loads, &mut rr, |s| s != nearest)
            .expect("other candidates remain");
        assert_ne!(site, nearest);
        assert_eq!(site, t.per_city[0][1].0, "fails over to second-nearest");
        assert!(extra >= 0.0);
    }

    #[test]
    fn pick_available_rejects_when_all_candidates_down() {
        let (dep, t) = table();
        let loads = vec![0.0; dep.n_sites()];
        let mut rr = vec![0usize; t.per_city.len()];
        for policy in [
            SchedulingPolicy::NearestSite,
            SchedulingPolicy::RoundRobinNearest(3),
            SchedulingPolicy::LoadAware(4),
            SchedulingPolicy::DelayConstrained { budget_ms: 2.0 },
        ] {
            assert_eq!(t.pick_available(policy, 0, &loads, &mut rr, |_| false), None);
        }
    }

    #[test]
    fn pick_available_matches_pick_when_everything_is_up() {
        let (dep, t) = table();
        let mut loads = vec![0.0; dep.n_sites()];
        loads[t.per_city[0][0].0] = 1e9;
        for policy in [
            SchedulingPolicy::NearestSite,
            SchedulingPolicy::LoadAware(4),
            SchedulingPolicy::DelayConstrained { budget_ms: 2.0 },
        ] {
            let mut rr_a = vec![0usize; t.per_city.len()];
            let mut rr_b = vec![0usize; t.per_city.len()];
            let a = t.pick(policy, 0, &loads, &mut rr_a);
            let b = t.pick_available(policy, 0, &loads, &mut rr_b, |_| true).unwrap();
            assert_eq!(a, b, "policy {policy:?}");
        }
    }
}
