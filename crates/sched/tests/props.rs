//! Property-based tests of the scheduling/migration/elasticity models.

use edgescope_net::geo::GeoPoint;
use edgescope_platform::deployment::Deployment;
use edgescope_platform::geo_china::CITIES;
use edgescope_sched::elastic::{evaluate, ElasticConfig};
use edgescope_sched::gslb::{CandidateTable, SchedulingPolicy};
use edgescope_sched::migration::{rebalance, MigrationConfig, SchedVm};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn policy_from(idx: usize, k: usize, budget: f64) -> SchedulingPolicy {
    match idx % 4 {
        0 => SchedulingPolicy::NearestSite,
        1 => SchedulingPolicy::RoundRobinNearest(k),
        2 => SchedulingPolicy::LoadAware(k),
        _ => SchedulingPolicy::DelayConstrained { budget_ms: budget },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pick_always_returns_a_candidate(
        seed in 0u64..500,
        policy_idx in 0usize..4,
        k in 1usize..12,
        budget in 0.0..30.0f64,
        city in 0usize..10,
        load_scale in 0.0..1e6f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dep = Deployment::nep(&mut rng, 40);
        let cities: Vec<GeoPoint> = CITIES.iter().take(10).map(|c| c.geo()).collect();
        let table = CandidateTable::build(&dep, &cities, 8);
        let loads: Vec<f64> = (0..dep.n_sites()).map(|i| load_scale * (i % 7) as f64).collect();
        let mut rr = vec![0usize; cities.len()];
        let policy = policy_from(policy_idx, k, budget);
        let (site, extra) = table.pick(policy, city, &loads, &mut rr);
        prop_assert!(table.per_city[city].iter().any(|c| c.0 == site),
            "{policy:?} picked a non-candidate");
        prop_assert!(extra >= 0.0);
        if let SchedulingPolicy::DelayConstrained { budget_ms } = policy {
            // Either within budget, or the nearest fallback (extra 0).
            prop_assert!(extra <= budget_ms || extra == table.per_city[city][0].2);
        }
    }

    #[test]
    fn migration_conserves_load_and_respects_budget(
        seed in 0u64..500,
        n_sites in 2usize..10,
        n_vms in 2usize..120,
        budget in 0usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let sites: Vec<GeoPoint> = (0..n_sites)
            .map(|i| GeoPoint::new(30.0 + 0.03 * i as f64, 110.0 + 0.04 * i as f64))
            .collect();
        let mut vms: Vec<SchedVm> = (0..n_vms)
            .map(|_| SchedVm {
                site: rng.gen_range(0..n_sites),
                load: rng.gen_range(0.1..10.0),
                mem_gb: rng.gen_range(1.0..64.0),
            })
            .collect();
        let before: f64 = vms.iter().map(|v| v.load).sum();
        let cfg = MigrationConfig { max_migrations: budget, ..Default::default() };
        let out = rebalance(&sites, &mut vms, &cfg);
        let after: f64 = vms.iter().map(|v| v.load).sum();
        prop_assert!((before - after).abs() < 1e-9, "load conserved");
        prop_assert!(out.steps.len() <= budget);
        prop_assert!(out.cv_after <= out.cv_before + 1e-9, "never worse");
        prop_assert!(out.moved_gb >= 0.0);
        for v in &vms {
            prop_assert!(v.site < n_sites);
        }
        for s in &out.steps {
            prop_assert!(s.copy_s > 0.0);
            prop_assert!(s.from != s.to);
        }
    }

    #[test]
    fn elastic_outcomes_always_sane(
        peak in 100.0..100_000.0f64,
        trough_frac in 0.01..1.0f64,
        days in 1usize..20,
        keepalive in 0usize..10,
    ) {
        let trough = peak * trough_frac;
        let demand: Vec<f64> = (0..days * 96)
            .map(|i| {
                let h = (i % 96) as f64 / 4.0;
                if (19.0..23.0).contains(&h) { peak } else { trough }
            })
            .collect();
        let cfg = ElasticConfig { keepalive_intervals: keepalive, ..Default::default() };
        let out = evaluate(&demand, &cfg);
        prop_assert!(out.iaas_cost_month > 0.0);
        prop_assert!(out.faas_cost_month > 0.0);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&out.cold_fraction));
        prop_assert!(out.iaas_utilization > 0.0 && out.iaas_utilization <= 1.0 + 1e-9);
        prop_assert!(out.faas_p95_ms >= cfg.warm_ms);
        prop_assert!(out.iaas_p95_ms >= cfg.warm_ms);
        // IaaS fleet must cover the peak with headroom.
        prop_assert!(out.iaas_cores * cfg.req_per_core_interval >= peak);
    }

    #[test]
    fn flatter_demand_pushes_cost_ratio_down(
        peak in 1000.0..50_000.0f64,
    ) {
        // The elasticity crossover: the flatter the load, the better IaaS
        // looks (monotone in trough fraction at fixed peak).
        let ratio_at = |frac: f64| {
            let demand: Vec<f64> = (0..96 * 20)
                .map(|i| {
                    let h = (i % 96) as f64 / 4.0;
                    if (19.0..23.0).contains(&h) { peak } else { peak * frac }
                })
                .collect();
            evaluate(&demand, &ElasticConfig::default()).cost_ratio()
        };
        prop_assert!(ratio_at(0.05) >= ratio_at(0.9) - 1e-9,
            "peaky {} vs flat {}", ratio_at(0.05), ratio_at(0.9));
    }
}
