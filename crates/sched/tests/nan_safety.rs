//! NaN regression tests for every scheduler comparator swept in the
//! `partial_cmp().unwrap()` → `f64::total_cmp` pass (the same bug class
//! PRs 3–4 and 8 eradicated from `analysis` and fig11–13).
//!
//! Contract under test: a NaN rate/latency/load/score must neither
//! panic a policy nor *win* a min/max selection. One exception is noted
//! inline: `elastic::evaluate`'s NaN demand (NaN propagates into cost
//! arithmetic by design — the sort just must not panic), and
//! `predictive::placement_study` generates its world internally from
//! the RNG, so NaN is injected through the extracted
//! `placement_outcomes` core instead.

use edgescope_net::geo::GeoPoint;
use edgescope_platform::deployment::Deployment;
use edgescope_platform::geo_china::CITIES;
use edgescope_sched::elastic::{evaluate, ElasticConfig};
use edgescope_sched::gslb::{CandidateTable, SchedulingPolicy};
use edgescope_sched::migration::{rebalance, MigrationConfig, SchedVm};
use edgescope_sched::predictive::{placement_outcomes, PredictiveConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn table() -> (Deployment, CandidateTable) {
    let mut rng = StdRng::seed_from_u64(1);
    let dep = Deployment::nep(&mut rng, 80);
    let cities: Vec<GeoPoint> = CITIES.iter().take(10).map(|c| c.geo()).collect();
    let t = CandidateTable::build(&dep, &cities, 8);
    (dep, t)
}

#[test]
fn gslb_pick_nan_load_never_wins() {
    let (dep, t) = table();
    for policy in [
        SchedulingPolicy::LoadAware(4),
        SchedulingPolicy::DelayConstrained { budget_ms: 50.0 },
    ] {
        for city in 0..t.per_city.len() {
            // Poison every candidate except the city's second-nearest:
            // the NaN sites must all lose the least-loaded selection.
            let mut loads = vec![f64::NAN; dep.n_sites()];
            let clean = t.per_city[city][1].0;
            loads[clean] = 3.0;
            let mut rr = vec![0usize; t.per_city.len()];
            let (site, _) = t.pick(policy, city, &loads, &mut rr);
            assert_eq!(site, clean, "NaN-loaded site won {policy:?} for city {city}");
        }
    }
}

#[test]
fn gslb_pick_all_nan_loads_no_panic() {
    let (dep, t) = table();
    let loads = vec![f64::NAN; dep.n_sites()];
    let mut rr = vec![0usize; t.per_city.len()];
    for policy in [
        SchedulingPolicy::NearestSite,
        SchedulingPolicy::RoundRobinNearest(3),
        SchedulingPolicy::LoadAware(4),
        SchedulingPolicy::DelayConstrained { budget_ms: 10.0 },
    ] {
        // Nothing to prefer — any candidate is acceptable, but the pick
        // must not panic.
        let (site, _) = t.pick(policy, 0, &loads, &mut rr);
        assert!(site < dep.n_sites());
    }
}

#[test]
fn gslb_pick_available_nan_load_never_wins() {
    let (dep, t) = table();
    let mut loads = vec![f64::NAN; dep.n_sites()];
    let clean = t.per_city[0][2].0;
    loads[clean] = 7.0;
    let mut rr = vec![0usize; t.per_city.len()];
    for policy in [
        SchedulingPolicy::LoadAware(6),
        SchedulingPolicy::DelayConstrained { budget_ms: 50.0 },
    ] {
        let picked = t
            .pick_available(policy, 0, &loads, &mut rr, |_| true)
            .expect("candidates exist");
        assert_eq!(picked.0, clean, "NaN-loaded site won {policy:?}");
    }
}

#[test]
fn migration_nan_site_never_hot_or_cold() {
    // Three sites close together; site 2's load is poisoned by a NaN VM.
    // The rebalancer must still move load from the genuinely hot site 0
    // to the cool site 1, never touching site 2 in either role.
    let geo = [
        GeoPoint { lat_deg: 31.0, lon_deg: 121.0 },
        GeoPoint { lat_deg: 31.1, lon_deg: 121.1 },
        GeoPoint { lat_deg: 31.2, lon_deg: 121.2 },
    ];
    let mut vms: Vec<SchedVm> = (0..10)
        .map(|i| SchedVm { site: 0, load: 10.0 + i as f64, mem_gb: 4.0 })
        .collect();
    vms.push(SchedVm { site: 1, load: 5.0, mem_gb: 4.0 });
    vms.push(SchedVm { site: 2, load: f64::NAN, mem_gb: 4.0 });
    let out = rebalance(&geo, &mut vms, &MigrationConfig::default());
    assert!(!out.steps.is_empty(), "rebalancer must still act");
    for step in &out.steps {
        assert_ne!(step.from, 2, "NaN-loaded site chosen as hot");
        assert_ne!(step.to, 2, "NaN-loaded site chosen as cold");
    }
    // The NaN VM itself must never migrate.
    assert_eq!(vms.last().unwrap().site, 2);
}

#[test]
fn migration_nan_vm_on_hot_site_not_moved() {
    let geo = [
        GeoPoint { lat_deg: 31.0, lon_deg: 121.0 },
        GeoPoint { lat_deg: 31.1, lon_deg: 121.1 },
    ];
    // Hot site 0 carries one NaN VM among movable finite ones.
    let mut vms = vec![
        SchedVm { site: 0, load: f64::NAN, mem_gb: 8.0 },
        SchedVm { site: 0, load: 20.0, mem_gb: 4.0 },
        SchedVm { site: 0, load: 30.0, mem_gb: 4.0 },
        SchedVm { site: 0, load: 40.0, mem_gb: 4.0 },
        SchedVm { site: 1, load: 5.0, mem_gb: 4.0 },
    ];
    let out = rebalance(&geo, &mut vms, &MigrationConfig::default());
    for step in &out.steps {
        assert_ne!(step.vm_idx, 0, "NaN-load VM selected for migration");
    }
    assert_eq!(vms[0].site, 0);
}

#[test]
fn elastic_nan_demand_no_panic() {
    // A NaN interval must not panic the weighted-p95 sort. The cost
    // outputs may be NaN (it propagates through sums by design); the
    // call completing is the contract.
    let mut demand: Vec<f64> = (0..96).map(|i| 100.0 + (i % 24) as f64 * 40.0).collect();
    demand[17] = f64::NAN;
    let out = evaluate(&demand, &ElasticConfig::default());
    assert!(out.faas_p95_ms.is_finite(), "p95 scan must stop before the NaN tail");
}

#[test]
fn predictive_nan_score_site_gets_no_vms() {
    // World with site 0's series and forecast fully poisoned: every
    // policy's score for it is NaN, so with total_cmp it must never win
    // the min and must end the study with zero placements.
    let cfg = PredictiveConfig { n_sites: 3, n_vms: 6, ..PredictiveConfig::default() };
    let horizon = (cfg.history_days + 1) * 24;
    let t_place = cfg.history_days * 24 + cfg.placement_hour;
    let mut sites = vec![
        vec![f64::NAN; horizon],
        vec![30.0; horizon],
        vec![50.0; horizon],
    ];
    sites[1][t_place] = 20.0;
    let forecasts = vec![vec![f64::NAN; 24], vec![30.0; 24], vec![50.0; 24]];
    let outcomes = placement_outcomes(&sites, &forecasts, t_place, &cfg);
    assert_eq!(outcomes.len(), 3);
    for o in &outcomes {
        assert_eq!(
            o.placed_per_site[0], 0.0,
            "NaN-score site won a placement under {:?}",
            o.policy
        );
        let placed_total: f64 = o.placed_per_site.iter().sum();
        assert_eq!(placed_total, cfg.vm_load * cfg.n_vms as f64);
    }
}
