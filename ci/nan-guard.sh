#!/usr/bin/env bash
# Static guard against the NaN-unsafe comparator/fold idioms this repo
# has repeatedly had to sweep (PRs 3-4, 8, 10):
#
#   * `.partial_cmp(..)...unwrap()` on floats - panics outright on NaN;
#   * `fold(0.0, f64::max)` (and the f64::MIN/MAX seeded variants) -
#     silently drops NaN operands, laundering poisoned data into 0.0.
#
# Scope: crates/*/src only. Test code (tests/ directories, and #[cfg(test)]
# modules are NOT excluded - in-src test modules must use the safe idioms
# too, so the guard stays a dumb line grep). Comment lines are ignored so
# documentation may name the banned idioms. Known-good exceptions live in
# ci/nan-guard-allowlist.txt as `path:line-content` substring patterns.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=ci/nan-guard-allowlist.txt
fail=0

# One pattern per banned idiom. Keep in sync with the header comment.
patterns=(
  '\.partial_cmp\(.*\)\s*\.unwrap\(\)'
  'partial_cmp\(.*\)\)\.unwrap\(\)'
  'fold\(\s*0\.0(f64|f32)?\s*,\s*f64::(max|min)\s*\)'
  'fold\(\s*f64::(MIN|MAX|NEG_INFINITY|INFINITY)\s*,\s*f64::(max|min)\s*\)'
)

hits_file=$(mktemp)
trap 'rm -f "$hits_file"' EXIT

for pat in "${patterns[@]}"; do
  # -I: skip binaries; comment-only lines (optionally indented //) are
  # stripped before matching so docs may mention the idioms.
  grep -rInE "$pat" crates/*/src --include='*.rs' 2>/dev/null |
    grep -vE '^[^:]+:[0-9]+:\s*//' >> "$hits_file" || true
done

if [[ -s $hits_file ]]; then
  while IFS= read -r hit; do
    allowed=0
    if [[ -f $allowlist ]]; then
      while IFS= read -r entry; do
        [[ -z $entry || $entry == \#* ]] && continue
        if [[ $hit == *"$entry"* ]]; then
          allowed=1
          break
        fi
      done < "$allowlist"
    fi
    if [[ $allowed -eq 0 ]]; then
      echo "NaN-unsafe idiom: $hit" >&2
      fail=1
    fi
  done < "$hits_file"
fi

if [[ $fail -ne 0 ]]; then
  cat >&2 <<'EOF'

Use f64::total_cmp for sorts/min_by/max_by (demote NaN keys to
f64::NEG_INFINITY first where NaN must LOSE a max), and
edgescope_analysis::stats::{peak_max, peak_min} for peak folds.
Genuine exceptions go in ci/nan-guard-allowlist.txt (substring of the
offending `path:line:content` grep hit), with a comment saying why.
EOF
  exit 1
fi
echo "nan-guard: clean"
