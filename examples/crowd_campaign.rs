//! A full crowd-sourced measurement campaign: latency + throughput +
//! inter-site scan — the paper's §3 pipeline end to end, with fault
//! injection to show the harness degrades gracefully on a hostile network.
//!
//! ```sh
//! cargo run --release --example crowd_campaign [n_users] [n_sites]
//! ```

use edgescope::analysis::stats::{median, Summary};
use edgescope::net::access::AccessNetwork;
use edgescope::net::fault::FaultInjector;
use edgescope::net::ping::PingEngine;
use edgescope::probe::intersite::intersite_scan;
use edgescope::probe::latency::{LatencyCampaign, LatencyConfig};
use edgescope::probe::throughput::{fig5_series, throughput_campaign, ThroughputConfig};
use edgescope::probe::user::recruit;
use edgescope::{Scale, Scenario};
use rand::SeedableRng;

fn main() {
    let n_users: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(80);
    let n_sites: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let mut scenario = Scenario::new(Scale::Quick, 11);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    scenario.nep = edgescope::platform::deployment::Deployment::nep(&mut rng, n_sites);
    let users = recruit(&mut rng, n_users);
    println!("campaign: {n_users} users x {n_sites} edge sites + 12 cloud regions");

    // --- latency ---------------------------------------------------------
    let campaign = LatencyCampaign::run(
        99,
        &users,
        &scenario.path_model,
        &scenario.nep,
        &scenario.alicloud,
        &LatencyConfig::default(),
    );
    for net in [AccessNetwork::Wifi, AccessNetwork::Lte] {
        let a = campaign.fig2a(net);
        let b = campaign.fig2b(net);
        println!(
            "{}: edge {:.1} ms (CV {:.1}%), cloud {:.1} ms (CV {:.1}%)",
            net.label(),
            median(&a.nearest_edge),
            100.0 * median(&b.nearest_edge),
            median(&a.nearest_cloud),
            100.0 * median(&b.nearest_cloud),
        );
    }
    let (edge_hops, cloud_hops) = campaign.fig3();
    println!(
        "hops: edge {} (median), cloud {} (median)",
        median(&edge_hops),
        median(&cloud_hops)
    );

    // --- throughput --------------------------------------------------------
    let rows = throughput_campaign(
        100,
        &users[..25.min(users.len())],
        &scenario.path_model,
        &scenario.tcp_model,
        &scenario.nep,
        &ThroughputConfig::default(),
    );
    for net in [AccessNetwork::Wifi, AccessNetwork::FiveG] {
        let (_, ys, r) = fig5_series(&rows, net, true);
        if ys.len() >= 2 {
            let s = Summary::of(&ys);
            println!(
                "{} downlink: mean {:.0} Mbps, p95 {:.0} Mbps, distance corr {:.2}",
                net.label(),
                s.mean,
                s.p95,
                r
            );
        }
    }

    // --- inter-site --------------------------------------------------------
    let scan = intersite_scan(101, &scenario.path_model, &scenario.nep, 5);
    let (n5, n10, n20) = scan.mean_neighbours();
    println!("inter-site: {:.1}/{:.1}/{:.1} neighbours within 5/10/20 ms", n5, n10, n20);

    // --- fault injection ----------------------------------------------------
    // The same harness under a hostile network: losses rise, jitter
    // inflates, but the pipeline still reports.
    let engine = PingEngine::with_fault(FaultInjector::hostile());
    let user = &users[0];
    let d = scenario.nep.sites[0].geo().distance_km(&user.geo);
    let path = scenario.path_model.ue_path(
        &mut rng,
        user.access,
        d,
        edgescope::net::path::TargetClass::EdgeSite,
    );
    let stats = engine.probe(&mut rng, &path, 30);
    println!(
        "hostile-network probe: {} of 30 probes lost, CV {:.1}%",
        stats.lost,
        100.0 * stats.cv().unwrap_or(0.0)
    );
}
