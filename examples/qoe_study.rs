//! Application QoE study (§3.3): run the cloud-gaming and live-streaming
//! pipelines against an edge VM and three clouds, print means and stage
//! breakdowns, and sweep the design knobs (GPU rendering, resolution,
//! transcoding, jitter buffer, player software).
//!
//! ```sh
//! cargo run --release --example qoe_study
//! ```

use edgescope::analysis::stats::mean;
use edgescope::qoe::device::Device;
use edgescope::qoe::game::Game;
use edgescope::qoe::gaming::GamingPipeline;
use edgescope::qoe::link::LinkProfile;
use edgescope::qoe::streaming::{Player, StreamingPipeline};
use edgescope::qoe::video::Resolution;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    // Table 6's WiFi RTTs: edge 11.4 ms, clouds 16.6 / 40.9 / 55.1 ms.
    let vms = [
        ("Edge", 11.4),
        ("Cloud-1", 16.6),
        ("Cloud-2", 40.9),
        ("Cloud-3", 55.1),
    ];

    println!("== cloud gaming (Samsung Note 10+, Flare, WiFi) ==");
    let gaming = GamingPipeline::paper_default();
    for (name, rtt) in vms {
        let link = LinkProfile::with_rtt(rtt, 60.0);
        let (samples, b) = gaming.run(&mut rng, &link, 50);
        println!(
            "{name:<8} response {:>4.0} ms  (server {:.0} ms, network {:.0} ms, decode {:.1} ms)",
            mean(&samples),
            b.server_ms + b.encode_ms,
            b.uplink_ms + b.downlink_ms,
            b.decode_ms
        );
    }
    // Ablations the paper discusses: GPU helps, cores don't, game matters.
    let edge = LinkProfile::with_rtt(11.4, 60.0);
    let gpu = GamingPipeline {
        server: edgescope::qoe::gaming::GamingServer { gpu: true, ..gaming.server },
        ..gaming
    };
    let (g, _) = gpu.run(&mut rng, &edge, 50);
    println!("with GPU rendering: {:.0} ms", mean(&g));
    for game in Game::ALL {
        let p = GamingPipeline { game, ..gaming };
        let (s, _) = p.run(&mut rng, &edge, 50);
        println!("game {:<13} {:.0} ms", game.name, mean(&s));
    }
    // Capacity: a single-threaded game loop means cores buy sessions, not
    // latency — until the VM is oversubscribed.
    for sessions in [1u32, 8, 12, 24] {
        let p = GamingPipeline {
            server: edgescope::qoe::gaming::GamingServer { sessions, ..gaming.server },
            ..gaming
        };
        let (s, _) = p.run(&mut rng, &edge, 50);
        println!("{sessions:>2} sessions on 8 vCPUs: {:.0} ms", mean(&s));
    }

    println!("\n== live streaming (1080p over RTMP, same-city sender/receiver) ==");
    let streaming = StreamingPipeline::paper_default();
    for (name, rtt) in vms {
        let link = LinkProfile::with_rtt(rtt, 60.0);
        let (samples, b) = streaming.run(&mut rng, &link, 50);
        println!(
            "{name:<8} delay {:>4.0} ms  (capture {:.0}, network {:.0}, player {:.0})",
            mean(&samples),
            b.capture_isp_ms,
            b.network_ms,
            b.player_render_ms
        );
    }
    let sweeps: [(&str, StreamingPipeline); 4] = [
        ("720p stream", StreamingPipeline { resolution: Resolution::R720p, ..streaming }),
        (
            "transcode 720p->1080p",
            StreamingPipeline {
                resolution: Resolution::R720p,
                transcode_to: Some(Resolution::R1080p),
                ..streaming
            },
        ),
        ("2 MB jitter buffer", StreamingPipeline { jitter_buffer_mb: Some(2.0), ..streaming }),
        ("ffplay receiver", StreamingPipeline { player: Player::FFplay, ..streaming }),
    ];
    for (label, p) in sweeps {
        let (s, _) = p.run(&mut rng, &edge, 50);
        println!("{label:<22} {:>5.0} ms", mean(&s));
    }
    println!(
        "\nreceiver decode at 1080p on {}: {:.1} ms",
        Device::MACBOOK_PRO16.name,
        Device::MACBOOK_PRO16.decode_ms(Resolution::R1080p)
    );
}
