//! Quickstart: build a small simulated world, run a crowd latency
//! campaign, and print the paper's headline comparison (nearest edge vs
//! nearest cloud vs all clouds).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use edgescope::analysis::stats::median;
use edgescope::net::access::AccessNetwork;
use edgescope::probe::latency::{LatencyCampaign, LatencyConfig};
use edgescope::probe::user::recruit;
use edgescope::{Scale, Scenario};
use rand::SeedableRng;

fn main() {
    // A deterministic world: 60 edge sites, AliCloud's 12 regions.
    let scenario = Scenario::new(Scale::Quick, 7);
    println!(
        "world: {} NEP edge sites, {} AliCloud regions, {} users",
        scenario.nep.n_sites(),
        scenario.alicloud.n_sites(),
        scenario.users.len()
    );

    // Recruit a fresh crowd and run the paper's §2.1.1 speed test: every
    // user pings every edge site and cloud region 30 times.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let users = recruit(&mut rng, 60);
    let campaign = LatencyCampaign::run(
        1,
        &users,
        &scenario.path_model,
        &scenario.nep,
        &scenario.alicloud,
        &LatencyConfig::default(),
    );

    println!("\nmedian mean-RTT per user (ms):");
    println!("{:<8} {:>12} {:>14} {:>11}", "network", "nearest edge", "nearest cloud", "all clouds");
    for net in [AccessNetwork::Wifi, AccessNetwork::Lte, AccessNetwork::FiveG] {
        let s = campaign.fig2a(net);
        if s.nearest_edge.len() < 3 {
            continue;
        }
        println!(
            "{:<8} {:>12.1} {:>14.1} {:>11.1}",
            net.label(),
            median(&s.nearest_edge),
            median(&s.nearest_cloud),
            median(&s.all_clouds)
        );
    }
    println!("\n(the paper's Fig. 2a medians: WiFi 16.1 / 23.6 / 40.0 ms)");
}
