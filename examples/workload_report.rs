//! Operator-side workload study (§4): generate NEP and Azure-like traces,
//! print VM sizes, utilization, imbalance, predictability, and export the
//! VM table + series artefacts.
//!
//! ```sh
//! cargo run --release --example workload_report [n_apps]
//! ```

use edgescope::analysis::cdf::Cdf;
use edgescope::analysis::stats::{mean, median};
use edgescope::predict::eval::evaluate_holt_winters;
use edgescope::predict::window::Aggregation;
use edgescope::trace::dataset::TraceDataset;
use edgescope::trace::io::{series_to_bytes, vm_table_to_tsv};
use edgescope::trace::series::TraceConfig;

fn main() {
    let n_apps: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(80);
    let cfg = TraceConfig { days: 14, cpu_interval_min: 10, bw_interval_min: 30, start_weekday: 0 };
    let (nep, _dep) = TraceDataset::generate_nep(5, 40, n_apps, cfg.clone());
    let azure = TraceDataset::generate_azure(6, 10, n_apps, cfg);
    println!("traces: NEP {} VMs, Azure {} VMs over 14 days\n", nep.n_vms(), azure.n_vms());

    for (name, ds) in [("NEP", &nep), ("Azure", &azure)] {
        let cores: Vec<f64> = ds.records.iter().map(|r| r.cores as f64).collect();
        let mems: Vec<f64> = ds.records.iter().map(|r| r.mem_gb as f64).collect();
        let means = ds.mean_cpu_per_vm();
        let cvs = ds.cpu_cv_per_vm();
        let idle = means.iter().filter(|&&m| m < 10.0).count() as f64 / means.len() as f64;
        println!(
            "{name}: median {:.0} cores / {:.0} GB; mean CPU {:.1}% ({:.0}% of VMs under 10%); CPU CV median {:.2}",
            median(&cores),
            median(&mems),
            mean(&means),
            100.0 * idle,
            median(&cvs),
        );
    }

    // Per-app imbalance (Fig. 13a).
    let gaps = nep.app_usage_gaps(8);
    if !gaps.is_empty() {
        let c = Cdf::from_slice(&gaps);
        println!(
            "\nNEP per-app P95/P5 usage gap: median {:.1}x, worst {:.0}x over {} apps",
            c.median(),
            c.max(),
            gaps.len()
        );
    }

    // Predictability (Fig. 14, Holt-Winters, mean target) on a small
    // stratified cohort.
    let cohort: Vec<Vec<f64>> = nep
        .series
        .iter()
        .step_by((nep.n_vms() / 6).max(1))
        .map(|s| s.cpu_util_pct.iter().map(|&v| v as f64).collect())
        .collect();
    let rep = evaluate_holt_winters(&cohort, nep.config.cpu_samples_per_half_hour(), Aggregation::Mean);
    if !rep.rmse_per_vm.is_empty() {
        println!("NEP Holt-Winters next-half-hour RMSE (median): {:.1} pp", rep.median_rmse());
    }

    // Export the trace artefacts (the formats a dataset release would use).
    let out = std::env::temp_dir().join("edgescope_workload_report");
    std::fs::create_dir_all(&out).expect("create output dir");
    let tsv = vm_table_to_tsv(&nep.records);
    std::fs::write(out.join("nep_vm_table.tsv"), &tsv).expect("write tsv");
    let bin = series_to_bytes(&nep.series);
    std::fs::write(out.join("nep_series.bin"), &bin).expect("write series");
    println!(
        "\nexported {} VM rows ({} KB TSV) and series ({} MB binary) to {}",
        nep.n_vms(),
        tsv.len() / 1024,
        bin.len() / (1024 * 1024),
        out.display()
    );
}
