//! Billing study (§4.5 / Appendix D): price one app's month on NEP and on
//! both clouds under all three network models, then reproduce the Table 3
//! sweep over the heaviest apps of a generated trace.
//!
//! ```sh
//! cargo run --release --example billing_study
//! ```

use edgescope::billing::bill::{cloud_network_month, nep_network_month, scale_to_month};
use edgescope::billing::tariff::{CloudTariff, NepTariff, NetworkModel, Operator};
use edgescope::billing::vcloud::table3_ratios;
use edgescope::platform::deployment::Deployment;
use edgescope::trace::dataset::TraceDataset;
use edgescope::trace::series::TraceConfig;

fn main() {
    let nep = NepTariff::paper();
    let ali = CloudTariff::alicloud();
    let hw = CloudTariff::huawei();

    // --- one hand-built app: a steady live-streaming service -------------
    // 10 VMs x (8 cores, 32 GB, 100 GB) pushing a combined ~200 Mbps with
    // an evening peak of ~320 Mbps, at a Chengdu site on China Mobile.
    println!("== a steady video app: 10x(8C/32G/100G), ~200 Mbps, Chengdu/CMCC ==");
    let mut bw = Vec::new();
    for _day in 0..30 {
        for slot in 0..288 {
            let h = slot as f64 / 12.0;
            let level = if (19.0..23.0).contains(&h) { 320.0 } else { 170.0 };
            bw.push(level);
        }
    }
    let nep_hw = 10.0 * nep.hardware_month(8, 32, 100);
    let nep_net = nep_network_month(&nep, &bw, 5, "Chengdu", Operator::Cmcc);
    println!("NEP:      hardware {nep_hw:.0} + network {nep_net:.0} = {:.0} RMB/month", nep_hw + nep_net);
    for (name, t) in [("AliCloud", &ali), ("Huawei  ", &hw)] {
        let cloud_hw = 10.0 * t.hardware_month(8, 32, 100);
        for model in NetworkModel::ALL {
            let net = match model {
                NetworkModel::PreReservedFixed => cloud_network_month(t, model, &bw, 5),
                _ => scale_to_month(cloud_network_month(t, model, &bw, 5), 30.0),
            };
            println!(
                "{name} [{}]: hardware {cloud_hw:.0} + network {net:.0} = {:.0} RMB/month ({:.2}x NEP)",
                model.label(),
                cloud_hw + net,
                (cloud_hw + net) / (nep_hw + nep_net)
            );
        }
    }

    // --- the bursty counter-example (§4.5's education app) ----------------
    println!("\n== a bursty education app: same mean traffic, 10x peaks 9-12 AM ==");
    let mut bursty = Vec::new();
    for _day in 0..30 {
        for slot in 0..288 {
            let h = slot as f64 / 12.0;
            bursty.push(if (9.0..12.0).contains(&h) { 1100.0 } else { 72.0 });
        }
    }
    let nep_b = nep_network_month(&nep, &bursty, 5, "Chengdu", Operator::Cmcc);
    let ali_b = scale_to_month(
        cloud_network_month(&ali, NetworkModel::OnDemandByBandwidth, &bursty, 5),
        30.0,
    );
    println!("NEP bills the daily peak:   {nep_b:.0} RMB/month");
    println!("AliCloud bills level-hours: {ali_b:.0} RMB/month ({:.2}x NEP — cloud wins here)", ali_b / nep_b);

    // --- Table 3 over a generated trace -----------------------------------
    println!("\n== Table 3 sweep over the 20 heaviest apps of a generated trace ==");
    let cfg = TraceConfig { days: 14, cpu_interval_min: 30, bw_interval_min: 15, start_weekday: 0 };
    let (ds, dep) = TraceDataset::generate_nep(21, 50, 60, cfg);
    let report = table3_ratios(&ds, &dep, &ali, &Deployment::alicloud(), 20);
    for (model, r, _) in &report.by_model {
        println!(
            "{:<26} range {:.2}x-{:.2}x  mean {:.2}x  median {:.2}x",
            model.label(),
            r.min,
            r.max,
            r.mean,
            r.median
        );
    }
    println!(
        "network is {:.0}% of the NEP bill on average (paper: 76%)",
        100.0 * report.nep_network_share_mean
    );
}
