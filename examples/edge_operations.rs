//! Operate an edge platform (the §5 extensions): schedule end-user
//! traffic across sites, rebalance with VM migration under a disruption
//! budget, and decide IaaS-vs-serverless per workload.
//!
//! ```sh
//! cargo run --release --example edge_operations
//! ```

use edgescope::platform::deployment::Deployment;
use edgescope::sched::elastic::{evaluate, ElasticConfig};
use edgescope::sched::gslb::SchedulingPolicy;
use edgescope::sched::migration::{rebalance, MigrationConfig, SchedVm};
use edgescope::sched::requests::DemandModel;
use edgescope::sched::simulate::{simulate_day, SimConfig};
use edgescope::net::geo::GeoPoint;
use edgescope::trace::app::AppCategory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let dep = Deployment::nep(&mut rng, 120);
    println!("platform: {} edge sites / {} servers\n", dep.n_sites(), dep.n_servers());

    // --- 1. cross-site request scheduling ---------------------------------
    println!("== request scheduling: one day of live-streaming demand ==");
    let demand = DemandModel::new(&mut rng, AppCategory::LiveStreaming, 120_000.0, 0.8);
    for policy in [
        SchedulingPolicy::NearestSite,
        SchedulingPolicy::RoundRobinNearest(8),
        SchedulingPolicy::LoadAware(8),
        SchedulingPolicy::DelayConstrained { budget_ms: 5.0 },
    ] {
        let mut prng = StdRng::seed_from_u64(7);
        let out = simulate_day(&mut prng, &dep, &demand, policy, &SimConfig::default());
        println!(
            "{:<42} delay {:>5.1} ms (p95 {:>5.1})   load CV {:.2}",
            out.policy_label, out.mean_delay_ms, out.p95_delay_ms, out.load_cv
        );
    }

    // --- 2. VM migration ----------------------------------------------------
    println!("\n== VM migration: a skewed 10-site metro ==");
    let sites: Vec<GeoPoint> = (0..10)
        .map(|i| GeoPoint::new(31.0 + 0.05 * i as f64, 121.0 + 0.05 * i as f64))
        .collect();
    let mut vms: Vec<SchedVm> = (0..400)
        .map(|_| SchedVm {
            site: if rng.gen::<f64>() < 0.6 { 0 } else { rng.gen_range(0..10) },
            load: rng.gen_range(0.5..8.0),
            mem_gb: [8.0, 16.0, 32.0, 64.0][rng.gen_range(0..4)],
        })
        .collect();
    for budget in [0usize, 10, 50, 400] {
        let mut trial = vms.clone();
        let out = rebalance(
            &sites,
            &mut trial,
            &MigrationConfig { max_migrations: budget, ..Default::default() },
        );
        println!(
            "budget {:>4}: CV {:.2} -> {:.2}  ({} migrations, {:.0} GB moved, {:.1} s downtime)",
            budget,
            out.cv_before,
            out.cv_after,
            out.steps.len(),
            out.moved_gb,
            out.total_downtime_s
        );
        if budget == 400 {
            vms = trial;
        }
    }

    // --- 3. IaaS vs serverless ----------------------------------------------
    println!("\n== elasticity: who should go serverless? ==");
    for (label, cat) in [
        ("online education", AppCategory::OnlineEducation),
        ("live streaming", AppCategory::LiveStreaming),
        ("video surveillance", AppCategory::VideoSurveillance),
    ] {
        let peak_profile = (0..96).map(|i| cat.diurnal(i as f64 / 4.0)).fold(0.0f64, f64::max);
        let demand: Vec<f64> = (0..30 * 96)
            .map(|i| 60_000.0 * cat.diurnal((i % 96) as f64 / 4.0) / peak_profile)
            .collect();
        let out = evaluate(&demand, &ElasticConfig::default());
        let verdict = if out.cost_ratio() > 1.0 { "serverless" } else { "IaaS" };
        println!(
            "{:<20} IaaS {:>6.0} vs FaaS {:>6.0} RMB/mo (util {:>3.0}%, cold p95 {:>4.0} ms) -> {}",
            label,
            out.iaas_cost_month,
            out.faas_cost_month,
            100.0 * out.iaas_utilization,
            out.faas_p95_ms,
            verdict
        );
    }
    println!("\n(cold-start tails are why 5.2 says serverless 'can barely meet' low-delay apps)");
}
