(function() {
    const implementors = Object.fromEntries([["edgescope_platform",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"edgescope_platform/placement/enum.PlacementError.html\" title=\"enum edgescope_platform::placement::PlacementError\">PlacementError</a>",0]]],["edgescope_probe",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"edgescope_probe/records/enum.RecordError.html\" title=\"enum edgescope_probe::records::RecordError\">RecordError</a>",0]]],["edgescope_trace",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"edgescope_trace/io/enum.ParseError.html\" title=\"enum edgescope_trace::io::ParseError\">ParseError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[334,313,300]}