/root/repo/target/release/deps/edgescope_core-9ed2861271c1244b.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/executor.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig11.rs crates/core/src/experiments/fig12.rs crates/core/src/experiments/fig13.rs crates/core/src/experiments/fig14.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/dyn_scenarios.rs crates/core/src/experiments/ext_billing.rs crates/core/src/experiments/ext_elastic.rs crates/core/src/experiments/ext_fragmentation.rs crates/core/src/experiments/ext_framesim.rs crates/core/src/experiments/ext_gslb.rs crates/core/src/experiments/ext_migration.rs crates/core/src/experiments/ext_predictive.rs crates/core/src/experiments/ext_predictors.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/latency_study.rs crates/core/src/experiments/metro.rs crates/core/src/experiments/prediction_study.rs crates/core/src/experiments/sales_rate.rs crates/core/src/experiments/streaming_study.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/experiments/table4.rs crates/core/src/experiments/table5.rs crates/core/src/experiments/table6.rs crates/core/src/experiments/workload_study.rs crates/core/src/report.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libedgescope_core-9ed2861271c1244b.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/executor.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig11.rs crates/core/src/experiments/fig12.rs crates/core/src/experiments/fig13.rs crates/core/src/experiments/fig14.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/dyn_scenarios.rs crates/core/src/experiments/ext_billing.rs crates/core/src/experiments/ext_elastic.rs crates/core/src/experiments/ext_fragmentation.rs crates/core/src/experiments/ext_framesim.rs crates/core/src/experiments/ext_gslb.rs crates/core/src/experiments/ext_migration.rs crates/core/src/experiments/ext_predictive.rs crates/core/src/experiments/ext_predictors.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/latency_study.rs crates/core/src/experiments/metro.rs crates/core/src/experiments/prediction_study.rs crates/core/src/experiments/sales_rate.rs crates/core/src/experiments/streaming_study.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/experiments/table4.rs crates/core/src/experiments/table5.rs crates/core/src/experiments/table6.rs crates/core/src/experiments/workload_study.rs crates/core/src/report.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libedgescope_core-9ed2861271c1244b.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/executor.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig11.rs crates/core/src/experiments/fig12.rs crates/core/src/experiments/fig13.rs crates/core/src/experiments/fig14.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/dyn_scenarios.rs crates/core/src/experiments/ext_billing.rs crates/core/src/experiments/ext_elastic.rs crates/core/src/experiments/ext_fragmentation.rs crates/core/src/experiments/ext_framesim.rs crates/core/src/experiments/ext_gslb.rs crates/core/src/experiments/ext_migration.rs crates/core/src/experiments/ext_predictive.rs crates/core/src/experiments/ext_predictors.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/latency_study.rs crates/core/src/experiments/metro.rs crates/core/src/experiments/prediction_study.rs crates/core/src/experiments/sales_rate.rs crates/core/src/experiments/streaming_study.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/experiments/table4.rs crates/core/src/experiments/table5.rs crates/core/src/experiments/table6.rs crates/core/src/experiments/workload_study.rs crates/core/src/report.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/executor.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/fig10.rs:
crates/core/src/experiments/fig11.rs:
crates/core/src/experiments/fig12.rs:
crates/core/src/experiments/fig13.rs:
crates/core/src/experiments/fig14.rs:
crates/core/src/experiments/fig2.rs:
crates/core/src/experiments/fig3.rs:
crates/core/src/experiments/fig4.rs:
crates/core/src/experiments/fig5.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7.rs:
crates/core/src/experiments/fig8.rs:
crates/core/src/experiments/dyn_scenarios.rs:
crates/core/src/experiments/ext_billing.rs:
crates/core/src/experiments/ext_elastic.rs:
crates/core/src/experiments/ext_fragmentation.rs:
crates/core/src/experiments/ext_framesim.rs:
crates/core/src/experiments/ext_gslb.rs:
crates/core/src/experiments/ext_migration.rs:
crates/core/src/experiments/ext_predictive.rs:
crates/core/src/experiments/ext_predictors.rs:
crates/core/src/experiments/fig9.rs:
crates/core/src/experiments/latency_study.rs:
crates/core/src/experiments/metro.rs:
crates/core/src/experiments/prediction_study.rs:
crates/core/src/experiments/sales_rate.rs:
crates/core/src/experiments/streaming_study.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/table2.rs:
crates/core/src/experiments/table3.rs:
crates/core/src/experiments/table4.rs:
crates/core/src/experiments/table5.rs:
crates/core/src/experiments/table6.rs:
crates/core/src/experiments/workload_study.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
