/root/repo/target/release/deps/edgescope_probe-f05904c9f11523f0.d: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs

/root/repo/target/release/deps/edgescope_probe-f05904c9f11523f0: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs

crates/probe/src/lib.rs:
crates/probe/src/intersite.rs:
crates/probe/src/latency.rs:
crates/probe/src/pool.rs:
crates/probe/src/records.rs:
crates/probe/src/stream.rs:
crates/probe/src/throughput.rs:
crates/probe/src/user.rs:
