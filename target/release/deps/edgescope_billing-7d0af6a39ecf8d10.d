/root/repo/target/release/deps/edgescope_billing-7d0af6a39ecf8d10.d: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs

/root/repo/target/release/deps/libedgescope_billing-7d0af6a39ecf8d10.rlib: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs

/root/repo/target/release/deps/libedgescope_billing-7d0af6a39ecf8d10.rmeta: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs

crates/billing/src/lib.rs:
crates/billing/src/bill.rs:
crates/billing/src/tariff.rs:
crates/billing/src/vcloud.rs:
