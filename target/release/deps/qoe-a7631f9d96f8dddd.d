/root/repo/target/release/deps/qoe-a7631f9d96f8dddd.d: crates/bench/benches/qoe.rs

/root/repo/target/release/deps/qoe-a7631f9d96f8dddd: crates/bench/benches/qoe.rs

crates/bench/benches/qoe.rs:
