/root/repo/target/release/deps/ablations-40993c3090ba5eba.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-40993c3090ba5eba: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
