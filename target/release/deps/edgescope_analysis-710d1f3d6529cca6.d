/root/repo/target/release/deps/edgescope_analysis-710d1f3d6529cca6.d: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/cdf.rs crates/analysis/src/histogram.rs crates/analysis/src/imbalance.rs crates/analysis/src/pearson.rs crates/analysis/src/regression.rs crates/analysis/src/seasonality.rs crates/analysis/src/sketch.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/timeseries.rs

/root/repo/target/release/deps/libedgescope_analysis-710d1f3d6529cca6.rlib: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/cdf.rs crates/analysis/src/histogram.rs crates/analysis/src/imbalance.rs crates/analysis/src/pearson.rs crates/analysis/src/regression.rs crates/analysis/src/seasonality.rs crates/analysis/src/sketch.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/timeseries.rs

/root/repo/target/release/deps/libedgescope_analysis-710d1f3d6529cca6.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/cdf.rs crates/analysis/src/histogram.rs crates/analysis/src/imbalance.rs crates/analysis/src/pearson.rs crates/analysis/src/regression.rs crates/analysis/src/seasonality.rs crates/analysis/src/sketch.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/timeseries.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bootstrap.rs:
crates/analysis/src/cdf.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/imbalance.rs:
crates/analysis/src/pearson.rs:
crates/analysis/src/regression.rs:
crates/analysis/src/seasonality.rs:
crates/analysis/src/sketch.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
crates/analysis/src/timeseries.rs:
