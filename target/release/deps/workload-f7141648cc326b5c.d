/root/repo/target/release/deps/workload-f7141648cc326b5c.d: crates/bench/benches/workload.rs

/root/repo/target/release/deps/workload-f7141648cc326b5c: crates/bench/benches/workload.rs

crates/bench/benches/workload.rs:
