/root/repo/target/release/deps/proptest-4faea7f891b67a82.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4faea7f891b67a82.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4faea7f891b67a82.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
