/root/repo/target/release/deps/campaign_baseline-135bbe110f546250.d: crates/bench/src/bin/campaign-baseline.rs

/root/repo/target/release/deps/campaign_baseline-135bbe110f546250: crates/bench/src/bin/campaign-baseline.rs

crates/bench/src/bin/campaign-baseline.rs:
