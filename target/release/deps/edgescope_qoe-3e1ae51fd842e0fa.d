/root/repo/target/release/deps/edgescope_qoe-3e1ae51fd842e0fa.d: crates/qoe/src/lib.rs crates/qoe/src/device.rs crates/qoe/src/framesim.rs crates/qoe/src/game.rs crates/qoe/src/gaming.rs crates/qoe/src/link.rs crates/qoe/src/streaming.rs crates/qoe/src/video.rs

/root/repo/target/release/deps/libedgescope_qoe-3e1ae51fd842e0fa.rlib: crates/qoe/src/lib.rs crates/qoe/src/device.rs crates/qoe/src/framesim.rs crates/qoe/src/game.rs crates/qoe/src/gaming.rs crates/qoe/src/link.rs crates/qoe/src/streaming.rs crates/qoe/src/video.rs

/root/repo/target/release/deps/libedgescope_qoe-3e1ae51fd842e0fa.rmeta: crates/qoe/src/lib.rs crates/qoe/src/device.rs crates/qoe/src/framesim.rs crates/qoe/src/game.rs crates/qoe/src/gaming.rs crates/qoe/src/link.rs crates/qoe/src/streaming.rs crates/qoe/src/video.rs

crates/qoe/src/lib.rs:
crates/qoe/src/device.rs:
crates/qoe/src/framesim.rs:
crates/qoe/src/game.rs:
crates/qoe/src/gaming.rs:
crates/qoe/src/link.rs:
crates/qoe/src/streaming.rs:
crates/qoe/src/video.rs:
