/root/repo/target/release/deps/prediction-5c437fed7f7f6988.d: crates/bench/benches/prediction.rs

/root/repo/target/release/deps/prediction-5c437fed7f7f6988: crates/bench/benches/prediction.rs

crates/bench/benches/prediction.rs:
