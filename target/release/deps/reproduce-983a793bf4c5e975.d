/root/repo/target/release/deps/reproduce-983a793bf4c5e975.d: crates/core/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-983a793bf4c5e975: crates/core/src/bin/reproduce.rs

crates/core/src/bin/reproduce.rs:
