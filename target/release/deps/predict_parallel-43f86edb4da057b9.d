/root/repo/target/release/deps/predict_parallel-43f86edb4da057b9.d: crates/bench/benches/predict_parallel.rs

/root/repo/target/release/deps/predict_parallel-43f86edb4da057b9: crates/bench/benches/predict_parallel.rs

crates/bench/benches/predict_parallel.rs:
