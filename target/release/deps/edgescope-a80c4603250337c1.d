/root/repo/target/release/deps/edgescope-a80c4603250337c1.d: src/lib.rs

/root/repo/target/release/deps/libedgescope-a80c4603250337c1.rlib: src/lib.rs

/root/repo/target/release/deps/libedgescope-a80c4603250337c1.rmeta: src/lib.rs

src/lib.rs:
