/root/repo/target/release/deps/edgescope_bench-e772798e2aeee978.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/edgescope_bench-e772798e2aeee978: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
