/root/repo/target/release/deps/edgescope_platform-1ce62860bae8558d.d: crates/platform/src/lib.rs crates/platform/src/density.rs crates/platform/src/deployment.rs crates/platform/src/geo_china.rs crates/platform/src/ids.rs crates/platform/src/placement.rs crates/platform/src/resources.rs crates/platform/src/sales.rs crates/platform/src/site.rs

/root/repo/target/release/deps/libedgescope_platform-1ce62860bae8558d.rlib: crates/platform/src/lib.rs crates/platform/src/density.rs crates/platform/src/deployment.rs crates/platform/src/geo_china.rs crates/platform/src/ids.rs crates/platform/src/placement.rs crates/platform/src/resources.rs crates/platform/src/sales.rs crates/platform/src/site.rs

/root/repo/target/release/deps/libedgescope_platform-1ce62860bae8558d.rmeta: crates/platform/src/lib.rs crates/platform/src/density.rs crates/platform/src/deployment.rs crates/platform/src/geo_china.rs crates/platform/src/ids.rs crates/platform/src/placement.rs crates/platform/src/resources.rs crates/platform/src/sales.rs crates/platform/src/site.rs

crates/platform/src/lib.rs:
crates/platform/src/density.rs:
crates/platform/src/deployment.rs:
crates/platform/src/geo_china.rs:
crates/platform/src/ids.rs:
crates/platform/src/placement.rs:
crates/platform/src/resources.rs:
crates/platform/src/sales.rs:
crates/platform/src/site.rs:
