/root/repo/target/release/deps/edgescope_trace-6abd3f1fa5f44f9e.d: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/dataset.rs crates/trace/src/flavor.rs crates/trace/src/io.rs crates/trace/src/pool.rs crates/trace/src/population.rs crates/trace/src/series.rs crates/trace/src/stream.rs crates/trace/src/validate.rs

/root/repo/target/release/deps/libedgescope_trace-6abd3f1fa5f44f9e.rlib: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/dataset.rs crates/trace/src/flavor.rs crates/trace/src/io.rs crates/trace/src/pool.rs crates/trace/src/population.rs crates/trace/src/series.rs crates/trace/src/stream.rs crates/trace/src/validate.rs

/root/repo/target/release/deps/libedgescope_trace-6abd3f1fa5f44f9e.rmeta: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/dataset.rs crates/trace/src/flavor.rs crates/trace/src/io.rs crates/trace/src/pool.rs crates/trace/src/population.rs crates/trace/src/series.rs crates/trace/src/stream.rs crates/trace/src/validate.rs

crates/trace/src/lib.rs:
crates/trace/src/app.rs:
crates/trace/src/dataset.rs:
crates/trace/src/flavor.rs:
crates/trace/src/io.rs:
crates/trace/src/pool.rs:
crates/trace/src/population.rs:
crates/trace/src/series.rs:
crates/trace/src/stream.rs:
crates/trace/src/validate.rs:
