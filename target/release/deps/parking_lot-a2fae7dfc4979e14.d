/root/repo/target/release/deps/parking_lot-a2fae7dfc4979e14.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-a2fae7dfc4979e14.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-a2fae7dfc4979e14.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
