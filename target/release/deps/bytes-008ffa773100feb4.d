/root/repo/target/release/deps/bytes-008ffa773100feb4.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-008ffa773100feb4.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-008ffa773100feb4.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
