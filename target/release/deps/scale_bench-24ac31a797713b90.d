/root/repo/target/release/deps/scale_bench-24ac31a797713b90.d: crates/bench/src/bin/scale-bench.rs

/root/repo/target/release/deps/scale_bench-24ac31a797713b90: crates/bench/src/bin/scale-bench.rs

crates/bench/src/bin/scale-bench.rs:
