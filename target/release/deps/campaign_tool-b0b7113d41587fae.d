/root/repo/target/release/deps/campaign_tool-b0b7113d41587fae.d: crates/probe/src/bin/campaign-tool.rs

/root/repo/target/release/deps/campaign_tool-b0b7113d41587fae: crates/probe/src/bin/campaign-tool.rs

crates/probe/src/bin/campaign-tool.rs:
