/root/repo/target/release/deps/study_parallel_baseline-f7590becf7451638.d: crates/bench/src/bin/study-parallel-baseline.rs

/root/repo/target/release/deps/study_parallel_baseline-f7590becf7451638: crates/bench/src/bin/study-parallel-baseline.rs

crates/bench/src/bin/study-parallel-baseline.rs:
