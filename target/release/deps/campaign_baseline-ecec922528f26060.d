/root/repo/target/release/deps/campaign_baseline-ecec922528f26060.d: crates/bench/src/bin/campaign-baseline.rs

/root/repo/target/release/deps/campaign_baseline-ecec922528f26060: crates/bench/src/bin/campaign-baseline.rs

crates/bench/src/bin/campaign-baseline.rs:
