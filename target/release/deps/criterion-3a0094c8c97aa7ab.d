/root/repo/target/release/deps/criterion-3a0094c8c97aa7ab.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3a0094c8c97aa7ab.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3a0094c8c97aa7ab.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
