/root/repo/target/release/deps/study_parallel-2957dea88dd953b9.d: crates/bench/benches/study_parallel.rs

/root/repo/target/release/deps/study_parallel-2957dea88dd953b9: crates/bench/benches/study_parallel.rs

crates/bench/benches/study_parallel.rs:
