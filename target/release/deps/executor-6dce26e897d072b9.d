/root/repo/target/release/deps/executor-6dce26e897d072b9.d: crates/bench/benches/executor.rs

/root/repo/target/release/deps/executor-6dce26e897d072b9: crates/bench/benches/executor.rs

crates/bench/benches/executor.rs:
