/root/repo/target/release/deps/study_parallel_baseline-9307b1fd47336250.d: crates/bench/src/bin/study-parallel-baseline.rs

/root/repo/target/release/deps/study_parallel_baseline-9307b1fd47336250: crates/bench/src/bin/study-parallel-baseline.rs

crates/bench/src/bin/study-parallel-baseline.rs:
