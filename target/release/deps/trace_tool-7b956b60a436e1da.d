/root/repo/target/release/deps/trace_tool-7b956b60a436e1da.d: crates/trace/src/bin/trace-tool.rs

/root/repo/target/release/deps/trace_tool-7b956b60a436e1da: crates/trace/src/bin/trace-tool.rs

crates/trace/src/bin/trace-tool.rs:
