/root/repo/target/release/deps/edgescope_net-445422523f663da5.d: crates/net/src/lib.rs crates/net/src/access.rs crates/net/src/fault.rs crates/net/src/geo.rs crates/net/src/path.rs crates/net/src/ping.rs crates/net/src/rng.rs crates/net/src/tcp.rs crates/net/src/traceroute.rs

/root/repo/target/release/deps/libedgescope_net-445422523f663da5.rlib: crates/net/src/lib.rs crates/net/src/access.rs crates/net/src/fault.rs crates/net/src/geo.rs crates/net/src/path.rs crates/net/src/ping.rs crates/net/src/rng.rs crates/net/src/tcp.rs crates/net/src/traceroute.rs

/root/repo/target/release/deps/libedgescope_net-445422523f663da5.rmeta: crates/net/src/lib.rs crates/net/src/access.rs crates/net/src/fault.rs crates/net/src/geo.rs crates/net/src/path.rs crates/net/src/ping.rs crates/net/src/rng.rs crates/net/src/tcp.rs crates/net/src/traceroute.rs

crates/net/src/lib.rs:
crates/net/src/access.rs:
crates/net/src/fault.rs:
crates/net/src/geo.rs:
crates/net/src/path.rs:
crates/net/src/ping.rs:
crates/net/src/rng.rs:
crates/net/src/tcp.rs:
crates/net/src/traceroute.rs:
