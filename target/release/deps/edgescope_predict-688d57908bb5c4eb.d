/root/repo/target/release/deps/edgescope_predict-688d57908bb5c4eb.d: crates/predict/src/lib.rs crates/predict/src/baselines.rs crates/predict/src/eval.rs crates/predict/src/gemm.rs crates/predict/src/holt_winters.rs crates/predict/src/lstm.rs crates/predict/src/pool.rs crates/predict/src/reference.rs crates/predict/src/window.rs

/root/repo/target/release/deps/libedgescope_predict-688d57908bb5c4eb.rlib: crates/predict/src/lib.rs crates/predict/src/baselines.rs crates/predict/src/eval.rs crates/predict/src/gemm.rs crates/predict/src/holt_winters.rs crates/predict/src/lstm.rs crates/predict/src/pool.rs crates/predict/src/reference.rs crates/predict/src/window.rs

/root/repo/target/release/deps/libedgescope_predict-688d57908bb5c4eb.rmeta: crates/predict/src/lib.rs crates/predict/src/baselines.rs crates/predict/src/eval.rs crates/predict/src/gemm.rs crates/predict/src/holt_winters.rs crates/predict/src/lstm.rs crates/predict/src/pool.rs crates/predict/src/reference.rs crates/predict/src/window.rs

crates/predict/src/lib.rs:
crates/predict/src/baselines.rs:
crates/predict/src/eval.rs:
crates/predict/src/gemm.rs:
crates/predict/src/holt_winters.rs:
crates/predict/src/lstm.rs:
crates/predict/src/pool.rs:
crates/predict/src/reference.rs:
crates/predict/src/window.rs:
