/root/repo/target/release/deps/billing-cdf9a6b8df7ad392.d: crates/bench/benches/billing.rs

/root/repo/target/release/deps/billing-cdf9a6b8df7ad392: crates/bench/benches/billing.rs

crates/bench/benches/billing.rs:
