/root/repo/target/release/deps/edgescope_sched-4d93292be9092139.d: crates/sched/src/lib.rs crates/sched/src/elastic.rs crates/sched/src/gslb.rs crates/sched/src/migration.rs crates/sched/src/predictive.rs crates/sched/src/requests.rs crates/sched/src/simulate.rs

/root/repo/target/release/deps/libedgescope_sched-4d93292be9092139.rlib: crates/sched/src/lib.rs crates/sched/src/elastic.rs crates/sched/src/gslb.rs crates/sched/src/migration.rs crates/sched/src/predictive.rs crates/sched/src/requests.rs crates/sched/src/simulate.rs

/root/repo/target/release/deps/libedgescope_sched-4d93292be9092139.rmeta: crates/sched/src/lib.rs crates/sched/src/elastic.rs crates/sched/src/gslb.rs crates/sched/src/migration.rs crates/sched/src/predictive.rs crates/sched/src/requests.rs crates/sched/src/simulate.rs

crates/sched/src/lib.rs:
crates/sched/src/elastic.rs:
crates/sched/src/gslb.rs:
crates/sched/src/migration.rs:
crates/sched/src/predictive.rs:
crates/sched/src/requests.rs:
crates/sched/src/simulate.rs:
