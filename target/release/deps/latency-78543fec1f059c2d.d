/root/repo/target/release/deps/latency-78543fec1f059c2d.d: crates/bench/benches/latency.rs

/root/repo/target/release/deps/latency-78543fec1f059c2d: crates/bench/benches/latency.rs

crates/bench/benches/latency.rs:
