/root/repo/target/release/deps/throughput-7e10d13795044231.d: crates/bench/benches/throughput.rs

/root/repo/target/release/deps/throughput-7e10d13795044231: crates/bench/benches/throughput.rs

crates/bench/benches/throughput.rs:
