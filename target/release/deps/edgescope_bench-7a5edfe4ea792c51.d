/root/repo/target/release/deps/edgescope_bench-7a5edfe4ea792c51.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libedgescope_bench-7a5edfe4ea792c51.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libedgescope_bench-7a5edfe4ea792c51.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
