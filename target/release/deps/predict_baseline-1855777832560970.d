/root/repo/target/release/deps/predict_baseline-1855777832560970.d: crates/bench/src/bin/predict-baseline.rs

/root/repo/target/release/deps/predict_baseline-1855777832560970: crates/bench/src/bin/predict-baseline.rs

crates/bench/src/bin/predict-baseline.rs:
