/root/repo/target/release/deps/edgescope_obs-fe5cb19c16807951.d: crates/obs/src/lib.rs crates/obs/src/log.rs

/root/repo/target/release/deps/libedgescope_obs-fe5cb19c16807951.rlib: crates/obs/src/lib.rs crates/obs/src/log.rs

/root/repo/target/release/deps/libedgescope_obs-fe5cb19c16807951.rmeta: crates/obs/src/lib.rs crates/obs/src/log.rs

crates/obs/src/lib.rs:
crates/obs/src/log.rs:
