/root/repo/target/release/deps/scale_bench-67394a6c8d5fd40c.d: crates/bench/src/bin/scale-bench.rs

/root/repo/target/release/deps/scale_bench-67394a6c8d5fd40c: crates/bench/src/bin/scale-bench.rs

crates/bench/src/bin/scale-bench.rs:
