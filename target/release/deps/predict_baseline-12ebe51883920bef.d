/root/repo/target/release/deps/predict_baseline-12ebe51883920bef.d: crates/bench/src/bin/predict-baseline.rs

/root/repo/target/release/deps/predict_baseline-12ebe51883920bef: crates/bench/src/bin/predict-baseline.rs

crates/bench/src/bin/predict-baseline.rs:
