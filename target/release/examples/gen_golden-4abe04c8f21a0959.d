/root/repo/target/release/examples/gen_golden-4abe04c8f21a0959.d: crates/predict/examples/gen_golden.rs

/root/repo/target/release/examples/gen_golden-4abe04c8f21a0959: crates/predict/examples/gen_golden.rs

crates/predict/examples/gen_golden.rs:
