/root/repo/target/release/examples/quantile_check-8369b120843d69dc.d: crates/net/examples/quantile_check.rs

/root/repo/target/release/examples/quantile_check-8369b120843d69dc: crates/net/examples/quantile_check.rs

crates/net/examples/quantile_check.rs:
