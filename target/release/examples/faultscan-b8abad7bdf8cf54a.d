/root/repo/target/release/examples/faultscan-b8abad7bdf8cf54a.d: crates/probe/examples/faultscan.rs

/root/repo/target/release/examples/faultscan-b8abad7bdf8cf54a: crates/probe/examples/faultscan.rs

crates/probe/examples/faultscan.rs:
