/root/repo/target/release/examples/seedscan-455e333a17521942.d: crates/core/examples/seedscan.rs

/root/repo/target/release/examples/seedscan-455e333a17521942: crates/core/examples/seedscan.rs

crates/core/examples/seedscan.rs:
