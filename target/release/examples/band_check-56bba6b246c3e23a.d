/root/repo/target/release/examples/band_check-56bba6b246c3e23a.d: examples/band_check.rs

/root/repo/target/release/examples/band_check-56bba6b246c3e23a: examples/band_check.rs

examples/band_check.rs:
