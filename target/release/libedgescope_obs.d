/root/repo/target/release/libedgescope_obs.rlib: /root/repo/crates/obs/src/lib.rs /root/repo/crates/obs/src/log.rs
