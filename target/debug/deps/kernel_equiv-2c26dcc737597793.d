/root/repo/target/debug/deps/kernel_equiv-2c26dcc737597793.d: crates/predict/tests/kernel_equiv.rs

/root/repo/target/debug/deps/kernel_equiv-2c26dcc737597793: crates/predict/tests/kernel_equiv.rs

crates/predict/tests/kernel_equiv.rs:
