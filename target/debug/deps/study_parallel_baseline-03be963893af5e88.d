/root/repo/target/debug/deps/study_parallel_baseline-03be963893af5e88.d: crates/bench/src/bin/study-parallel-baseline.rs

/root/repo/target/debug/deps/study_parallel_baseline-03be963893af5e88: crates/bench/src/bin/study-parallel-baseline.rs

crates/bench/src/bin/study-parallel-baseline.rs:
