/root/repo/target/debug/deps/extensions-c39ecb15d61d867e.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-c39ecb15d61d867e.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
