/root/repo/target/debug/deps/trace_tool-c4fd56a6a2696c26.d: crates/trace/src/bin/trace-tool.rs

/root/repo/target/debug/deps/trace_tool-c4fd56a6a2696c26: crates/trace/src/bin/trace-tool.rs

crates/trace/src/bin/trace-tool.rs:
