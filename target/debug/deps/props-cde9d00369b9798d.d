/root/repo/target/debug/deps/props-cde9d00369b9798d.d: crates/net/tests/props.rs

/root/repo/target/debug/deps/props-cde9d00369b9798d: crates/net/tests/props.rs

crates/net/tests/props.rs:
