/root/repo/target/debug/deps/proptest-1631dd9edbf1637d.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1631dd9edbf1637d.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1631dd9edbf1637d.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
