/root/repo/target/debug/deps/edgescope_analysis-8de04ad63fe305a7.d: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/cdf.rs crates/analysis/src/histogram.rs crates/analysis/src/imbalance.rs crates/analysis/src/pearson.rs crates/analysis/src/regression.rs crates/analysis/src/seasonality.rs crates/analysis/src/sketch.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/timeseries.rs

/root/repo/target/debug/deps/edgescope_analysis-8de04ad63fe305a7: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/cdf.rs crates/analysis/src/histogram.rs crates/analysis/src/imbalance.rs crates/analysis/src/pearson.rs crates/analysis/src/regression.rs crates/analysis/src/seasonality.rs crates/analysis/src/sketch.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/timeseries.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bootstrap.rs:
crates/analysis/src/cdf.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/imbalance.rs:
crates/analysis/src/pearson.rs:
crates/analysis/src/regression.rs:
crates/analysis/src/seasonality.rs:
crates/analysis/src/sketch.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
crates/analysis/src/timeseries.rs:
