/root/repo/target/debug/deps/docs_sync-650fceb22c42d979.d: tests/docs_sync.rs

/root/repo/target/debug/deps/docs_sync-650fceb22c42d979: tests/docs_sync.rs

tests/docs_sync.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
