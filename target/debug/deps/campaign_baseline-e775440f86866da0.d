/root/repo/target/debug/deps/campaign_baseline-e775440f86866da0.d: crates/bench/src/bin/campaign-baseline.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_baseline-e775440f86866da0.rmeta: crates/bench/src/bin/campaign-baseline.rs Cargo.toml

crates/bench/src/bin/campaign-baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
