/root/repo/target/debug/deps/props-60207262acf2019f.d: crates/analysis/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-60207262acf2019f.rmeta: crates/analysis/tests/props.rs Cargo.toml

crates/analysis/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
