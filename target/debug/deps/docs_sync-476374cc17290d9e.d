/root/repo/target/debug/deps/docs_sync-476374cc17290d9e.d: tests/docs_sync.rs Cargo.toml

/root/repo/target/debug/deps/libdocs_sync-476374cc17290d9e.rmeta: tests/docs_sync.rs Cargo.toml

tests/docs_sync.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
