/root/repo/target/debug/deps/edgescope_trace-d4b9914c8a925e8a.d: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/dataset.rs crates/trace/src/flavor.rs crates/trace/src/io.rs crates/trace/src/pool.rs crates/trace/src/population.rs crates/trace/src/series.rs crates/trace/src/stream.rs crates/trace/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_trace-d4b9914c8a925e8a.rmeta: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/dataset.rs crates/trace/src/flavor.rs crates/trace/src/io.rs crates/trace/src/pool.rs crates/trace/src/population.rs crates/trace/src/series.rs crates/trace/src/stream.rs crates/trace/src/validate.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/app.rs:
crates/trace/src/dataset.rs:
crates/trace/src/flavor.rs:
crates/trace/src/io.rs:
crates/trace/src/pool.rs:
crates/trace/src/population.rs:
crates/trace/src/series.rs:
crates/trace/src/stream.rs:
crates/trace/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
