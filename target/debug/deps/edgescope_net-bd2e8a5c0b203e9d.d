/root/repo/target/debug/deps/edgescope_net-bd2e8a5c0b203e9d.d: crates/net/src/lib.rs crates/net/src/access.rs crates/net/src/fault.rs crates/net/src/geo.rs crates/net/src/path.rs crates/net/src/ping.rs crates/net/src/rng.rs crates/net/src/tcp.rs crates/net/src/traceroute.rs

/root/repo/target/debug/deps/libedgescope_net-bd2e8a5c0b203e9d.rmeta: crates/net/src/lib.rs crates/net/src/access.rs crates/net/src/fault.rs crates/net/src/geo.rs crates/net/src/path.rs crates/net/src/ping.rs crates/net/src/rng.rs crates/net/src/tcp.rs crates/net/src/traceroute.rs

crates/net/src/lib.rs:
crates/net/src/access.rs:
crates/net/src/fault.rs:
crates/net/src/geo.rs:
crates/net/src/path.rs:
crates/net/src/ping.rs:
crates/net/src/rng.rs:
crates/net/src/tcp.rs:
crates/net/src/traceroute.rs:
