/root/repo/target/debug/deps/edgescope_obs-2ef9d20a3e524a15.d: crates/obs/src/lib.rs crates/obs/src/log.rs

/root/repo/target/debug/deps/libedgescope_obs-2ef9d20a3e524a15.rlib: crates/obs/src/lib.rs crates/obs/src/log.rs

/root/repo/target/debug/deps/libedgescope_obs-2ef9d20a3e524a15.rmeta: crates/obs/src/lib.rs crates/obs/src/log.rs

crates/obs/src/lib.rs:
crates/obs/src/log.rs:
