/root/repo/target/debug/deps/edgescope_sched-70f75075d6293589.d: crates/sched/src/lib.rs crates/sched/src/elastic.rs crates/sched/src/gslb.rs crates/sched/src/migration.rs crates/sched/src/predictive.rs crates/sched/src/requests.rs crates/sched/src/simulate.rs

/root/repo/target/debug/deps/libedgescope_sched-70f75075d6293589.rlib: crates/sched/src/lib.rs crates/sched/src/elastic.rs crates/sched/src/gslb.rs crates/sched/src/migration.rs crates/sched/src/predictive.rs crates/sched/src/requests.rs crates/sched/src/simulate.rs

/root/repo/target/debug/deps/libedgescope_sched-70f75075d6293589.rmeta: crates/sched/src/lib.rs crates/sched/src/elastic.rs crates/sched/src/gslb.rs crates/sched/src/migration.rs crates/sched/src/predictive.rs crates/sched/src/requests.rs crates/sched/src/simulate.rs

crates/sched/src/lib.rs:
crates/sched/src/elastic.rs:
crates/sched/src/gslb.rs:
crates/sched/src/migration.rs:
crates/sched/src/predictive.rs:
crates/sched/src/requests.rs:
crates/sched/src/simulate.rs:
