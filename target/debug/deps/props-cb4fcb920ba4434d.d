/root/repo/target/debug/deps/props-cb4fcb920ba4434d.d: crates/billing/tests/props.rs

/root/repo/target/debug/deps/props-cb4fcb920ba4434d: crates/billing/tests/props.rs

crates/billing/tests/props.rs:
