/root/repo/target/debug/deps/parking_lot-a5165a2f13c5488d.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-a5165a2f13c5488d.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
