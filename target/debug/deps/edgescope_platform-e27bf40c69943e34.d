/root/repo/target/debug/deps/edgescope_platform-e27bf40c69943e34.d: crates/platform/src/lib.rs crates/platform/src/density.rs crates/platform/src/deployment.rs crates/platform/src/geo_china.rs crates/platform/src/ids.rs crates/platform/src/placement.rs crates/platform/src/resources.rs crates/platform/src/sales.rs crates/platform/src/site.rs

/root/repo/target/debug/deps/libedgescope_platform-e27bf40c69943e34.rlib: crates/platform/src/lib.rs crates/platform/src/density.rs crates/platform/src/deployment.rs crates/platform/src/geo_china.rs crates/platform/src/ids.rs crates/platform/src/placement.rs crates/platform/src/resources.rs crates/platform/src/sales.rs crates/platform/src/site.rs

/root/repo/target/debug/deps/libedgescope_platform-e27bf40c69943e34.rmeta: crates/platform/src/lib.rs crates/platform/src/density.rs crates/platform/src/deployment.rs crates/platform/src/geo_china.rs crates/platform/src/ids.rs crates/platform/src/placement.rs crates/platform/src/resources.rs crates/platform/src/sales.rs crates/platform/src/site.rs

crates/platform/src/lib.rs:
crates/platform/src/density.rs:
crates/platform/src/deployment.rs:
crates/platform/src/geo_china.rs:
crates/platform/src/ids.rs:
crates/platform/src/placement.rs:
crates/platform/src/resources.rs:
crates/platform/src/sales.rs:
crates/platform/src/site.rs:
