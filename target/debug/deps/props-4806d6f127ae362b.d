/root/repo/target/debug/deps/props-4806d6f127ae362b.d: crates/trace/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-4806d6f127ae362b.rmeta: crates/trace/tests/props.rs Cargo.toml

crates/trace/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
