/root/repo/target/debug/deps/edgescope_predict-f11b140783517cd0.d: crates/predict/src/lib.rs crates/predict/src/baselines.rs crates/predict/src/eval.rs crates/predict/src/gemm.rs crates/predict/src/holt_winters.rs crates/predict/src/lstm.rs crates/predict/src/pool.rs crates/predict/src/reference.rs crates/predict/src/window.rs

/root/repo/target/debug/deps/edgescope_predict-f11b140783517cd0: crates/predict/src/lib.rs crates/predict/src/baselines.rs crates/predict/src/eval.rs crates/predict/src/gemm.rs crates/predict/src/holt_winters.rs crates/predict/src/lstm.rs crates/predict/src/pool.rs crates/predict/src/reference.rs crates/predict/src/window.rs

crates/predict/src/lib.rs:
crates/predict/src/baselines.rs:
crates/predict/src/eval.rs:
crates/predict/src/gemm.rs:
crates/predict/src/holt_winters.rs:
crates/predict/src/lstm.rs:
crates/predict/src/pool.rs:
crates/predict/src/reference.rs:
crates/predict/src/window.rs:
