/root/repo/target/debug/deps/props-483f4d6aef53a700.d: crates/predict/tests/props.rs

/root/repo/target/debug/deps/props-483f4d6aef53a700: crates/predict/tests/props.rs

crates/predict/tests/props.rs:
