/root/repo/target/debug/deps/edgescope_platform-4327d4a40d1b6bc9.d: crates/platform/src/lib.rs crates/platform/src/density.rs crates/platform/src/deployment.rs crates/platform/src/geo_china.rs crates/platform/src/ids.rs crates/platform/src/placement.rs crates/platform/src/resources.rs crates/platform/src/sales.rs crates/platform/src/site.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_platform-4327d4a40d1b6bc9.rmeta: crates/platform/src/lib.rs crates/platform/src/density.rs crates/platform/src/deployment.rs crates/platform/src/geo_china.rs crates/platform/src/ids.rs crates/platform/src/placement.rs crates/platform/src/resources.rs crates/platform/src/sales.rs crates/platform/src/site.rs Cargo.toml

crates/platform/src/lib.rs:
crates/platform/src/density.rs:
crates/platform/src/deployment.rs:
crates/platform/src/geo_china.rs:
crates/platform/src/ids.rs:
crates/platform/src/placement.rs:
crates/platform/src/resources.rs:
crates/platform/src/sales.rs:
crates/platform/src/site.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
