/root/repo/target/debug/deps/reproduce-1da819d6b30f7ff1.d: crates/core/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-1da819d6b30f7ff1: crates/core/src/bin/reproduce.rs

crates/core/src/bin/reproduce.rs:
