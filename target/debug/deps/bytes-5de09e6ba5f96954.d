/root/repo/target/debug/deps/bytes-5de09e6ba5f96954.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-5de09e6ba5f96954.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-5de09e6ba5f96954.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
