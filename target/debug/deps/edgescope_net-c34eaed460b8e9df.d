/root/repo/target/debug/deps/edgescope_net-c34eaed460b8e9df.d: crates/net/src/lib.rs crates/net/src/access.rs crates/net/src/fault.rs crates/net/src/geo.rs crates/net/src/path.rs crates/net/src/ping.rs crates/net/src/rng.rs crates/net/src/tcp.rs crates/net/src/traceroute.rs

/root/repo/target/debug/deps/libedgescope_net-c34eaed460b8e9df.rlib: crates/net/src/lib.rs crates/net/src/access.rs crates/net/src/fault.rs crates/net/src/geo.rs crates/net/src/path.rs crates/net/src/ping.rs crates/net/src/rng.rs crates/net/src/tcp.rs crates/net/src/traceroute.rs

/root/repo/target/debug/deps/libedgescope_net-c34eaed460b8e9df.rmeta: crates/net/src/lib.rs crates/net/src/access.rs crates/net/src/fault.rs crates/net/src/geo.rs crates/net/src/path.rs crates/net/src/ping.rs crates/net/src/rng.rs crates/net/src/tcp.rs crates/net/src/traceroute.rs

crates/net/src/lib.rs:
crates/net/src/access.rs:
crates/net/src/fault.rs:
crates/net/src/geo.rs:
crates/net/src/path.rs:
crates/net/src/ping.rs:
crates/net/src/rng.rs:
crates/net/src/tcp.rs:
crates/net/src/traceroute.rs:
