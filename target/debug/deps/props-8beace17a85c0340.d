/root/repo/target/debug/deps/props-8beace17a85c0340.d: crates/predict/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-8beace17a85c0340.rmeta: crates/predict/tests/props.rs Cargo.toml

crates/predict/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
