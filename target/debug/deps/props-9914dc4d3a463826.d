/root/repo/target/debug/deps/props-9914dc4d3a463826.d: crates/net/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-9914dc4d3a463826.rmeta: crates/net/tests/props.rs Cargo.toml

crates/net/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
