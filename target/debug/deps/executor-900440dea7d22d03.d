/root/repo/target/debug/deps/executor-900440dea7d22d03.d: crates/bench/benches/executor.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor-900440dea7d22d03.rmeta: crates/bench/benches/executor.rs Cargo.toml

crates/bench/benches/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
