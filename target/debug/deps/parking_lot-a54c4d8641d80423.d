/root/repo/target/debug/deps/parking_lot-a54c4d8641d80423.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-a54c4d8641d80423: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
