/root/repo/target/debug/deps/end_to_end-6ff324a690163205.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6ff324a690163205: tests/end_to_end.rs

tests/end_to_end.rs:
