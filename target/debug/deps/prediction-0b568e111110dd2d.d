/root/repo/target/debug/deps/prediction-0b568e111110dd2d.d: crates/bench/benches/prediction.rs Cargo.toml

/root/repo/target/debug/deps/libprediction-0b568e111110dd2d.rmeta: crates/bench/benches/prediction.rs Cargo.toml

crates/bench/benches/prediction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
