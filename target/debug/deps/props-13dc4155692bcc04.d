/root/repo/target/debug/deps/props-13dc4155692bcc04.d: crates/qoe/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-13dc4155692bcc04.rmeta: crates/qoe/tests/props.rs Cargo.toml

crates/qoe/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
