/root/repo/target/debug/deps/edgescope_billing-97732c4c70a2755f.d: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_billing-97732c4c70a2755f.rmeta: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs Cargo.toml

crates/billing/src/lib.rs:
crates/billing/src/bill.rs:
crates/billing/src/tariff.rs:
crates/billing/src/vcloud.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
