/root/repo/target/debug/deps/dynamics-9540fd362f5ba0d1.d: tests/dynamics.rs

/root/repo/target/debug/deps/dynamics-9540fd362f5ba0d1: tests/dynamics.rs

tests/dynamics.rs:
