/root/repo/target/debug/deps/workload-e161908e48a0d42c.d: crates/bench/benches/workload.rs Cargo.toml

/root/repo/target/debug/deps/libworkload-e161908e48a0d42c.rmeta: crates/bench/benches/workload.rs Cargo.toml

crates/bench/benches/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
