/root/repo/target/debug/deps/calibration-1d767770fb30de85.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-1d767770fb30de85: tests/calibration.rs

tests/calibration.rs:
