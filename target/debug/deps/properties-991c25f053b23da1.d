/root/repo/target/debug/deps/properties-991c25f053b23da1.d: tests/properties.rs

/root/repo/target/debug/deps/properties-991c25f053b23da1: tests/properties.rs

tests/properties.rs:
