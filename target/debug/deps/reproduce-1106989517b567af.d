/root/repo/target/debug/deps/reproduce-1106989517b567af.d: crates/core/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-1106989517b567af: crates/core/src/bin/reproduce.rs

crates/core/src/bin/reproduce.rs:
