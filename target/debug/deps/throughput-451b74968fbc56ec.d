/root/repo/target/debug/deps/throughput-451b74968fbc56ec.d: crates/bench/benches/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libthroughput-451b74968fbc56ec.rmeta: crates/bench/benches/throughput.rs Cargo.toml

crates/bench/benches/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
