/root/repo/target/debug/deps/edgescope_trace-e2170d629d6e4a4f.d: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/dataset.rs crates/trace/src/flavor.rs crates/trace/src/io.rs crates/trace/src/pool.rs crates/trace/src/population.rs crates/trace/src/series.rs crates/trace/src/stream.rs crates/trace/src/validate.rs

/root/repo/target/debug/deps/edgescope_trace-e2170d629d6e4a4f: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/dataset.rs crates/trace/src/flavor.rs crates/trace/src/io.rs crates/trace/src/pool.rs crates/trace/src/population.rs crates/trace/src/series.rs crates/trace/src/stream.rs crates/trace/src/validate.rs

crates/trace/src/lib.rs:
crates/trace/src/app.rs:
crates/trace/src/dataset.rs:
crates/trace/src/flavor.rs:
crates/trace/src/io.rs:
crates/trace/src/pool.rs:
crates/trace/src/population.rs:
crates/trace/src/series.rs:
crates/trace/src/stream.rs:
crates/trace/src/validate.rs:
