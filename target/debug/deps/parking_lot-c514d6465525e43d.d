/root/repo/target/debug/deps/parking_lot-c514d6465525e43d.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c514d6465525e43d.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c514d6465525e43d.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
