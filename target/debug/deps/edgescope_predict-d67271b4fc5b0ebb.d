/root/repo/target/debug/deps/edgescope_predict-d67271b4fc5b0ebb.d: crates/predict/src/lib.rs crates/predict/src/baselines.rs crates/predict/src/eval.rs crates/predict/src/gemm.rs crates/predict/src/holt_winters.rs crates/predict/src/lstm.rs crates/predict/src/pool.rs crates/predict/src/reference.rs crates/predict/src/window.rs

/root/repo/target/debug/deps/libedgescope_predict-d67271b4fc5b0ebb.rmeta: crates/predict/src/lib.rs crates/predict/src/baselines.rs crates/predict/src/eval.rs crates/predict/src/gemm.rs crates/predict/src/holt_winters.rs crates/predict/src/lstm.rs crates/predict/src/pool.rs crates/predict/src/reference.rs crates/predict/src/window.rs

crates/predict/src/lib.rs:
crates/predict/src/baselines.rs:
crates/predict/src/eval.rs:
crates/predict/src/gemm.rs:
crates/predict/src/holt_winters.rs:
crates/predict/src/lstm.rs:
crates/predict/src/pool.rs:
crates/predict/src/reference.rs:
crates/predict/src/window.rs:
