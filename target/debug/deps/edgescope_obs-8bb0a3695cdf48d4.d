/root/repo/target/debug/deps/edgescope_obs-8bb0a3695cdf48d4.d: crates/obs/src/lib.rs crates/obs/src/log.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_obs-8bb0a3695cdf48d4.rmeta: crates/obs/src/lib.rs crates/obs/src/log.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/log.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
