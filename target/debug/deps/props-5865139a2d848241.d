/root/repo/target/debug/deps/props-5865139a2d848241.d: crates/trace/tests/props.rs

/root/repo/target/debug/deps/props-5865139a2d848241: crates/trace/tests/props.rs

crates/trace/tests/props.rs:
