/root/repo/target/debug/deps/trace_tool-66cc555fa5b9a8b4.d: crates/trace/src/bin/trace-tool.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_tool-66cc555fa5b9a8b4.rmeta: crates/trace/src/bin/trace-tool.rs Cargo.toml

crates/trace/src/bin/trace-tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
