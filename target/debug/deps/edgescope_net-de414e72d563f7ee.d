/root/repo/target/debug/deps/edgescope_net-de414e72d563f7ee.d: crates/net/src/lib.rs crates/net/src/access.rs crates/net/src/fault.rs crates/net/src/geo.rs crates/net/src/path.rs crates/net/src/ping.rs crates/net/src/rng.rs crates/net/src/tcp.rs crates/net/src/traceroute.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_net-de414e72d563f7ee.rmeta: crates/net/src/lib.rs crates/net/src/access.rs crates/net/src/fault.rs crates/net/src/geo.rs crates/net/src/path.rs crates/net/src/ping.rs crates/net/src/rng.rs crates/net/src/tcp.rs crates/net/src/traceroute.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/access.rs:
crates/net/src/fault.rs:
crates/net/src/geo.rs:
crates/net/src/path.rs:
crates/net/src/ping.rs:
crates/net/src/rng.rs:
crates/net/src/tcp.rs:
crates/net/src/traceroute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
