/root/repo/target/debug/deps/edgescope_obs-f4ec419529b23818.d: crates/obs/src/lib.rs crates/obs/src/log.rs

/root/repo/target/debug/deps/edgescope_obs-f4ec419529b23818: crates/obs/src/lib.rs crates/obs/src/log.rs

crates/obs/src/lib.rs:
crates/obs/src/log.rs:
