/root/repo/target/debug/deps/campaign_tool-12c2d0ca055ab92a.d: crates/probe/src/bin/campaign-tool.rs

/root/repo/target/debug/deps/campaign_tool-12c2d0ca055ab92a: crates/probe/src/bin/campaign-tool.rs

crates/probe/src/bin/campaign-tool.rs:
