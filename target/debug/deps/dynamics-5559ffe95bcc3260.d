/root/repo/target/debug/deps/dynamics-5559ffe95bcc3260.d: tests/dynamics.rs Cargo.toml

/root/repo/target/debug/deps/libdynamics-5559ffe95bcc3260.rmeta: tests/dynamics.rs Cargo.toml

tests/dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
