/root/repo/target/debug/deps/determinism-b45cfe25032fe268.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-b45cfe25032fe268: tests/determinism.rs

tests/determinism.rs:
