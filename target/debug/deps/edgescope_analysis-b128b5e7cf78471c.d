/root/repo/target/debug/deps/edgescope_analysis-b128b5e7cf78471c.d: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/cdf.rs crates/analysis/src/histogram.rs crates/analysis/src/imbalance.rs crates/analysis/src/pearson.rs crates/analysis/src/regression.rs crates/analysis/src/seasonality.rs crates/analysis/src/sketch.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/timeseries.rs

/root/repo/target/debug/deps/libedgescope_analysis-b128b5e7cf78471c.rlib: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/cdf.rs crates/analysis/src/histogram.rs crates/analysis/src/imbalance.rs crates/analysis/src/pearson.rs crates/analysis/src/regression.rs crates/analysis/src/seasonality.rs crates/analysis/src/sketch.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/timeseries.rs

/root/repo/target/debug/deps/libedgescope_analysis-b128b5e7cf78471c.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/cdf.rs crates/analysis/src/histogram.rs crates/analysis/src/imbalance.rs crates/analysis/src/pearson.rs crates/analysis/src/regression.rs crates/analysis/src/seasonality.rs crates/analysis/src/sketch.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/timeseries.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bootstrap.rs:
crates/analysis/src/cdf.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/imbalance.rs:
crates/analysis/src/pearson.rs:
crates/analysis/src/regression.rs:
crates/analysis/src/seasonality.rs:
crates/analysis/src/sketch.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
crates/analysis/src/timeseries.rs:
