/root/repo/target/debug/deps/edgescope_probe-8e8f5370ec783f0f.d: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs

/root/repo/target/debug/deps/libedgescope_probe-8e8f5370ec783f0f.rmeta: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs

crates/probe/src/lib.rs:
crates/probe/src/intersite.rs:
crates/probe/src/latency.rs:
crates/probe/src/pool.rs:
crates/probe/src/records.rs:
crates/probe/src/stream.rs:
crates/probe/src/throughput.rs:
crates/probe/src/user.rs:
