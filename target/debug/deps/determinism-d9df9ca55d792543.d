/root/repo/target/debug/deps/determinism-d9df9ca55d792543.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-d9df9ca55d792543.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
