/root/repo/target/debug/deps/campaign_tool-d942bbe306a52f26.d: crates/probe/src/bin/campaign-tool.rs

/root/repo/target/debug/deps/campaign_tool-d942bbe306a52f26: crates/probe/src/bin/campaign-tool.rs

crates/probe/src/bin/campaign-tool.rs:
