/root/repo/target/debug/deps/edgescope_bench-fac3254526e47150.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libedgescope_bench-fac3254526e47150.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libedgescope_bench-fac3254526e47150.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
