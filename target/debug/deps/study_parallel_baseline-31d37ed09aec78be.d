/root/repo/target/debug/deps/study_parallel_baseline-31d37ed09aec78be.d: crates/bench/src/bin/study-parallel-baseline.rs Cargo.toml

/root/repo/target/debug/deps/libstudy_parallel_baseline-31d37ed09aec78be.rmeta: crates/bench/src/bin/study-parallel-baseline.rs Cargo.toml

crates/bench/src/bin/study-parallel-baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
