/root/repo/target/debug/deps/proptest-75eb2374d96fc979.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-75eb2374d96fc979: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
