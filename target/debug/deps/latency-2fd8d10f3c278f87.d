/root/repo/target/debug/deps/latency-2fd8d10f3c278f87.d: crates/bench/benches/latency.rs Cargo.toml

/root/repo/target/debug/deps/liblatency-2fd8d10f3c278f87.rmeta: crates/bench/benches/latency.rs Cargo.toml

crates/bench/benches/latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
