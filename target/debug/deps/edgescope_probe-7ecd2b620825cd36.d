/root/repo/target/debug/deps/edgescope_probe-7ecd2b620825cd36.d: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs

/root/repo/target/debug/deps/edgescope_probe-7ecd2b620825cd36: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs

crates/probe/src/lib.rs:
crates/probe/src/intersite.rs:
crates/probe/src/latency.rs:
crates/probe/src/pool.rs:
crates/probe/src/records.rs:
crates/probe/src/stream.rs:
crates/probe/src/throughput.rs:
crates/probe/src/user.rs:
