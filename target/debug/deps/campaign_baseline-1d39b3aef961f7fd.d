/root/repo/target/debug/deps/campaign_baseline-1d39b3aef961f7fd.d: crates/bench/src/bin/campaign-baseline.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_baseline-1d39b3aef961f7fd.rmeta: crates/bench/src/bin/campaign-baseline.rs Cargo.toml

crates/bench/src/bin/campaign-baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
