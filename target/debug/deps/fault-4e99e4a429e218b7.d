/root/repo/target/debug/deps/fault-4e99e4a429e218b7.d: crates/probe/tests/fault.rs

/root/repo/target/debug/deps/fault-4e99e4a429e218b7: crates/probe/tests/fault.rs

crates/probe/tests/fault.rs:
