/root/repo/target/debug/deps/props-a70a689b25a9943a.d: crates/sched/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-a70a689b25a9943a.rmeta: crates/sched/tests/props.rs Cargo.toml

crates/sched/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
