/root/repo/target/debug/deps/edgescope_bench-8a6787103aaf62e5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libedgescope_bench-8a6787103aaf62e5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
