/root/repo/target/debug/deps/edgescope_qoe-545f881b41481423.d: crates/qoe/src/lib.rs crates/qoe/src/device.rs crates/qoe/src/framesim.rs crates/qoe/src/game.rs crates/qoe/src/gaming.rs crates/qoe/src/link.rs crates/qoe/src/streaming.rs crates/qoe/src/video.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_qoe-545f881b41481423.rmeta: crates/qoe/src/lib.rs crates/qoe/src/device.rs crates/qoe/src/framesim.rs crates/qoe/src/game.rs crates/qoe/src/gaming.rs crates/qoe/src/link.rs crates/qoe/src/streaming.rs crates/qoe/src/video.rs Cargo.toml

crates/qoe/src/lib.rs:
crates/qoe/src/device.rs:
crates/qoe/src/framesim.rs:
crates/qoe/src/game.rs:
crates/qoe/src/gaming.rs:
crates/qoe/src/link.rs:
crates/qoe/src/streaming.rs:
crates/qoe/src/video.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
