/root/repo/target/debug/deps/edgescope_bench-dd6e05dcbda6075d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_bench-dd6e05dcbda6075d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
