/root/repo/target/debug/deps/edgescope_bench-8cd558e87a0731d9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/edgescope_bench-8cd558e87a0731d9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
