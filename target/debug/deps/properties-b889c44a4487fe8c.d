/root/repo/target/debug/deps/properties-b889c44a4487fe8c.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b889c44a4487fe8c.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
