/root/repo/target/debug/deps/calibration-0c4c834fcd64d13c.d: tests/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-0c4c834fcd64d13c.rmeta: tests/calibration.rs Cargo.toml

tests/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
