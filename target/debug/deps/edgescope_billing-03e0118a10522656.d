/root/repo/target/debug/deps/edgescope_billing-03e0118a10522656.d: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs

/root/repo/target/debug/deps/libedgescope_billing-03e0118a10522656.rmeta: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs

crates/billing/src/lib.rs:
crates/billing/src/bill.rs:
crates/billing/src/tariff.rs:
crates/billing/src/vcloud.rs:
