/root/repo/target/debug/deps/trace_tool-2ed87b560c1fe44f.d: crates/trace/src/bin/trace-tool.rs

/root/repo/target/debug/deps/trace_tool-2ed87b560c1fe44f: crates/trace/src/bin/trace-tool.rs

crates/trace/src/bin/trace-tool.rs:
