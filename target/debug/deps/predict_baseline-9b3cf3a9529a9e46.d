/root/repo/target/debug/deps/predict_baseline-9b3cf3a9529a9e46.d: crates/bench/src/bin/predict-baseline.rs Cargo.toml

/root/repo/target/debug/deps/libpredict_baseline-9b3cf3a9529a9e46.rmeta: crates/bench/src/bin/predict-baseline.rs Cargo.toml

crates/bench/src/bin/predict-baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
