/root/repo/target/debug/deps/crossbeam-7fe1a0376480838b.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-7fe1a0376480838b: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
