/root/repo/target/debug/deps/props-d739e178b2c72c86.d: crates/sched/tests/props.rs

/root/repo/target/debug/deps/props-d739e178b2c72c86: crates/sched/tests/props.rs

crates/sched/tests/props.rs:
