/root/repo/target/debug/deps/scale_bench-f9ad5f339f24ce79.d: crates/bench/src/bin/scale-bench.rs Cargo.toml

/root/repo/target/debug/deps/libscale_bench-f9ad5f339f24ce79.rmeta: crates/bench/src/bin/scale-bench.rs Cargo.toml

crates/bench/src/bin/scale-bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
