/root/repo/target/debug/deps/edgescope_billing-daa1e33b46242331.d: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs

/root/repo/target/debug/deps/libedgescope_billing-daa1e33b46242331.rlib: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs

/root/repo/target/debug/deps/libedgescope_billing-daa1e33b46242331.rmeta: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs

crates/billing/src/lib.rs:
crates/billing/src/bill.rs:
crates/billing/src/tariff.rs:
crates/billing/src/vcloud.rs:
