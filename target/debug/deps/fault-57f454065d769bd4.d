/root/repo/target/debug/deps/fault-57f454065d769bd4.d: crates/probe/tests/fault.rs Cargo.toml

/root/repo/target/debug/deps/libfault-57f454065d769bd4.rmeta: crates/probe/tests/fault.rs Cargo.toml

crates/probe/tests/fault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
