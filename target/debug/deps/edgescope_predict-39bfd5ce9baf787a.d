/root/repo/target/debug/deps/edgescope_predict-39bfd5ce9baf787a.d: crates/predict/src/lib.rs crates/predict/src/baselines.rs crates/predict/src/eval.rs crates/predict/src/gemm.rs crates/predict/src/holt_winters.rs crates/predict/src/lstm.rs crates/predict/src/pool.rs crates/predict/src/reference.rs crates/predict/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_predict-39bfd5ce9baf787a.rmeta: crates/predict/src/lib.rs crates/predict/src/baselines.rs crates/predict/src/eval.rs crates/predict/src/gemm.rs crates/predict/src/holt_winters.rs crates/predict/src/lstm.rs crates/predict/src/pool.rs crates/predict/src/reference.rs crates/predict/src/window.rs Cargo.toml

crates/predict/src/lib.rs:
crates/predict/src/baselines.rs:
crates/predict/src/eval.rs:
crates/predict/src/gemm.rs:
crates/predict/src/holt_winters.rs:
crates/predict/src/lstm.rs:
crates/predict/src/pool.rs:
crates/predict/src/reference.rs:
crates/predict/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
