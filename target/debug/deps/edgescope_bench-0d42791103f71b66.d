/root/repo/target/debug/deps/edgescope_bench-0d42791103f71b66.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_bench-0d42791103f71b66.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
