/root/repo/target/debug/deps/bytes-378e5804a3549177.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-378e5804a3549177.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
