/root/repo/target/debug/deps/proptest-50f2050b6fdfa76f.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-50f2050b6fdfa76f.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
