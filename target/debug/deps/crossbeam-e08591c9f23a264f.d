/root/repo/target/debug/deps/crossbeam-e08591c9f23a264f.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-e08591c9f23a264f.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
