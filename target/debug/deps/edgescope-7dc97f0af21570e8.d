/root/repo/target/debug/deps/edgescope-7dc97f0af21570e8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope-7dc97f0af21570e8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
