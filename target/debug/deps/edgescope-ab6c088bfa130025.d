/root/repo/target/debug/deps/edgescope-ab6c088bfa130025.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope-ab6c088bfa130025.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
