/root/repo/target/debug/deps/reproduce-af820fe7ba2e6cd3.d: crates/core/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-af820fe7ba2e6cd3.rmeta: crates/core/src/bin/reproduce.rs Cargo.toml

crates/core/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
