/root/repo/target/debug/deps/edgescope_analysis-01365a12bde3f2ab.d: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/cdf.rs crates/analysis/src/histogram.rs crates/analysis/src/imbalance.rs crates/analysis/src/pearson.rs crates/analysis/src/regression.rs crates/analysis/src/seasonality.rs crates/analysis/src/sketch.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_analysis-01365a12bde3f2ab.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/cdf.rs crates/analysis/src/histogram.rs crates/analysis/src/imbalance.rs crates/analysis/src/pearson.rs crates/analysis/src/regression.rs crates/analysis/src/seasonality.rs crates/analysis/src/sketch.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs crates/analysis/src/timeseries.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/bootstrap.rs:
crates/analysis/src/cdf.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/imbalance.rs:
crates/analysis/src/pearson.rs:
crates/analysis/src/regression.rs:
crates/analysis/src/seasonality.rs:
crates/analysis/src/sketch.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
crates/analysis/src/timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
