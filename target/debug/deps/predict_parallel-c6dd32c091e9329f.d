/root/repo/target/debug/deps/predict_parallel-c6dd32c091e9329f.d: crates/bench/benches/predict_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libpredict_parallel-c6dd32c091e9329f.rmeta: crates/bench/benches/predict_parallel.rs Cargo.toml

crates/bench/benches/predict_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
