/root/repo/target/debug/deps/edgescope_qoe-a70a5bfe1d2427d6.d: crates/qoe/src/lib.rs crates/qoe/src/device.rs crates/qoe/src/framesim.rs crates/qoe/src/game.rs crates/qoe/src/gaming.rs crates/qoe/src/link.rs crates/qoe/src/streaming.rs crates/qoe/src/video.rs

/root/repo/target/debug/deps/libedgescope_qoe-a70a5bfe1d2427d6.rlib: crates/qoe/src/lib.rs crates/qoe/src/device.rs crates/qoe/src/framesim.rs crates/qoe/src/game.rs crates/qoe/src/gaming.rs crates/qoe/src/link.rs crates/qoe/src/streaming.rs crates/qoe/src/video.rs

/root/repo/target/debug/deps/libedgescope_qoe-a70a5bfe1d2427d6.rmeta: crates/qoe/src/lib.rs crates/qoe/src/device.rs crates/qoe/src/framesim.rs crates/qoe/src/game.rs crates/qoe/src/gaming.rs crates/qoe/src/link.rs crates/qoe/src/streaming.rs crates/qoe/src/video.rs

crates/qoe/src/lib.rs:
crates/qoe/src/device.rs:
crates/qoe/src/framesim.rs:
crates/qoe/src/game.rs:
crates/qoe/src/gaming.rs:
crates/qoe/src/link.rs:
crates/qoe/src/streaming.rs:
crates/qoe/src/video.rs:
