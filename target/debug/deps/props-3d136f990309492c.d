/root/repo/target/debug/deps/props-3d136f990309492c.d: crates/qoe/tests/props.rs

/root/repo/target/debug/deps/props-3d136f990309492c: crates/qoe/tests/props.rs

crates/qoe/tests/props.rs:
