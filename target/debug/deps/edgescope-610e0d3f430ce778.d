/root/repo/target/debug/deps/edgescope-610e0d3f430ce778.d: src/lib.rs

/root/repo/target/debug/deps/edgescope-610e0d3f430ce778: src/lib.rs

src/lib.rs:
