/root/repo/target/debug/deps/kernel_equiv-4ebd71ab48b8e007.d: crates/predict/tests/kernel_equiv.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_equiv-4ebd71ab48b8e007.rmeta: crates/predict/tests/kernel_equiv.rs Cargo.toml

crates/predict/tests/kernel_equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
