/root/repo/target/debug/deps/extensions-f4bc2fb7c19be833.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-f4bc2fb7c19be833: tests/extensions.rs

tests/extensions.rs:
