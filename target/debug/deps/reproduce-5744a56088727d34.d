/root/repo/target/debug/deps/reproduce-5744a56088727d34.d: crates/core/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-5744a56088727d34.rmeta: crates/core/src/bin/reproduce.rs Cargo.toml

crates/core/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
