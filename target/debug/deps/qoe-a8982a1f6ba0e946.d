/root/repo/target/debug/deps/qoe-a8982a1f6ba0e946.d: crates/bench/benches/qoe.rs Cargo.toml

/root/repo/target/debug/deps/libqoe-a8982a1f6ba0e946.rmeta: crates/bench/benches/qoe.rs Cargo.toml

crates/bench/benches/qoe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
