/root/repo/target/debug/deps/edgescope_billing-984d7c48b7d94a2d.d: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs

/root/repo/target/debug/deps/edgescope_billing-984d7c48b7d94a2d: crates/billing/src/lib.rs crates/billing/src/bill.rs crates/billing/src/tariff.rs crates/billing/src/vcloud.rs

crates/billing/src/lib.rs:
crates/billing/src/bill.rs:
crates/billing/src/tariff.rs:
crates/billing/src/vcloud.rs:
