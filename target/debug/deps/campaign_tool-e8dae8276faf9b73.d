/root/repo/target/debug/deps/campaign_tool-e8dae8276faf9b73.d: crates/probe/src/bin/campaign-tool.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_tool-e8dae8276faf9b73.rmeta: crates/probe/src/bin/campaign-tool.rs Cargo.toml

crates/probe/src/bin/campaign-tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
