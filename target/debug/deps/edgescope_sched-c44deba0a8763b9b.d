/root/repo/target/debug/deps/edgescope_sched-c44deba0a8763b9b.d: crates/sched/src/lib.rs crates/sched/src/elastic.rs crates/sched/src/gslb.rs crates/sched/src/migration.rs crates/sched/src/predictive.rs crates/sched/src/requests.rs crates/sched/src/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_sched-c44deba0a8763b9b.rmeta: crates/sched/src/lib.rs crates/sched/src/elastic.rs crates/sched/src/gslb.rs crates/sched/src/migration.rs crates/sched/src/predictive.rs crates/sched/src/requests.rs crates/sched/src/simulate.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/elastic.rs:
crates/sched/src/gslb.rs:
crates/sched/src/migration.rs:
crates/sched/src/predictive.rs:
crates/sched/src/requests.rs:
crates/sched/src/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
