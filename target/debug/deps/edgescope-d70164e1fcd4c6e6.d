/root/repo/target/debug/deps/edgescope-d70164e1fcd4c6e6.d: src/lib.rs

/root/repo/target/debug/deps/libedgescope-d70164e1fcd4c6e6.rlib: src/lib.rs

/root/repo/target/debug/deps/libedgescope-d70164e1fcd4c6e6.rmeta: src/lib.rs

src/lib.rs:
