/root/repo/target/debug/deps/edgescope_probe-5c1b143442d0bcc7.d: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs Cargo.toml

/root/repo/target/debug/deps/libedgescope_probe-5c1b143442d0bcc7.rmeta: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs Cargo.toml

crates/probe/src/lib.rs:
crates/probe/src/intersite.rs:
crates/probe/src/latency.rs:
crates/probe/src/pool.rs:
crates/probe/src/records.rs:
crates/probe/src/stream.rs:
crates/probe/src/throughput.rs:
crates/probe/src/user.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
