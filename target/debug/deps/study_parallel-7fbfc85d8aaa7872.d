/root/repo/target/debug/deps/study_parallel-7fbfc85d8aaa7872.d: crates/bench/benches/study_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libstudy_parallel-7fbfc85d8aaa7872.rmeta: crates/bench/benches/study_parallel.rs Cargo.toml

crates/bench/benches/study_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
