/root/repo/target/debug/deps/billing-af206a0f0bc3e193.d: crates/bench/benches/billing.rs Cargo.toml

/root/repo/target/debug/deps/libbilling-af206a0f0bc3e193.rmeta: crates/bench/benches/billing.rs Cargo.toml

crates/bench/benches/billing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
