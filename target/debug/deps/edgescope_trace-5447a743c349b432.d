/root/repo/target/debug/deps/edgescope_trace-5447a743c349b432.d: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/dataset.rs crates/trace/src/flavor.rs crates/trace/src/io.rs crates/trace/src/pool.rs crates/trace/src/population.rs crates/trace/src/series.rs crates/trace/src/stream.rs crates/trace/src/validate.rs

/root/repo/target/debug/deps/libedgescope_trace-5447a743c349b432.rlib: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/dataset.rs crates/trace/src/flavor.rs crates/trace/src/io.rs crates/trace/src/pool.rs crates/trace/src/population.rs crates/trace/src/series.rs crates/trace/src/stream.rs crates/trace/src/validate.rs

/root/repo/target/debug/deps/libedgescope_trace-5447a743c349b432.rmeta: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/dataset.rs crates/trace/src/flavor.rs crates/trace/src/io.rs crates/trace/src/pool.rs crates/trace/src/population.rs crates/trace/src/series.rs crates/trace/src/stream.rs crates/trace/src/validate.rs

crates/trace/src/lib.rs:
crates/trace/src/app.rs:
crates/trace/src/dataset.rs:
crates/trace/src/flavor.rs:
crates/trace/src/io.rs:
crates/trace/src/pool.rs:
crates/trace/src/population.rs:
crates/trace/src/series.rs:
crates/trace/src/stream.rs:
crates/trace/src/validate.rs:
