/root/repo/target/debug/deps/edgescope_obs-c1ec2eda7bc92e90.d: crates/obs/src/lib.rs crates/obs/src/log.rs

/root/repo/target/debug/deps/libedgescope_obs-c1ec2eda7bc92e90.rmeta: crates/obs/src/lib.rs crates/obs/src/log.rs

crates/obs/src/lib.rs:
crates/obs/src/log.rs:
