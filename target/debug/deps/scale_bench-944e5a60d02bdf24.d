/root/repo/target/debug/deps/scale_bench-944e5a60d02bdf24.d: crates/bench/src/bin/scale-bench.rs

/root/repo/target/debug/deps/scale_bench-944e5a60d02bdf24: crates/bench/src/bin/scale-bench.rs

crates/bench/src/bin/scale-bench.rs:
