/root/repo/target/debug/deps/edgescope_probe-bc9758eedcb5b79e.d: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs

/root/repo/target/debug/deps/libedgescope_probe-bc9758eedcb5b79e.rlib: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs

/root/repo/target/debug/deps/libedgescope_probe-bc9758eedcb5b79e.rmeta: crates/probe/src/lib.rs crates/probe/src/intersite.rs crates/probe/src/latency.rs crates/probe/src/pool.rs crates/probe/src/records.rs crates/probe/src/stream.rs crates/probe/src/throughput.rs crates/probe/src/user.rs

crates/probe/src/lib.rs:
crates/probe/src/intersite.rs:
crates/probe/src/latency.rs:
crates/probe/src/pool.rs:
crates/probe/src/records.rs:
crates/probe/src/stream.rs:
crates/probe/src/throughput.rs:
crates/probe/src/user.rs:
