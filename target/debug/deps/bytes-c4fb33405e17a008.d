/root/repo/target/debug/deps/bytes-c4fb33405e17a008.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-c4fb33405e17a008: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
