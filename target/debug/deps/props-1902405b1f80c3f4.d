/root/repo/target/debug/deps/props-1902405b1f80c3f4.d: crates/billing/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-1902405b1f80c3f4.rmeta: crates/billing/tests/props.rs Cargo.toml

crates/billing/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
