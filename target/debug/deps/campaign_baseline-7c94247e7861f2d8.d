/root/repo/target/debug/deps/campaign_baseline-7c94247e7861f2d8.d: crates/bench/src/bin/campaign-baseline.rs

/root/repo/target/debug/deps/campaign_baseline-7c94247e7861f2d8: crates/bench/src/bin/campaign-baseline.rs

crates/bench/src/bin/campaign-baseline.rs:
