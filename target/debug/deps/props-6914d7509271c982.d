/root/repo/target/debug/deps/props-6914d7509271c982.d: crates/analysis/tests/props.rs

/root/repo/target/debug/deps/props-6914d7509271c982: crates/analysis/tests/props.rs

crates/analysis/tests/props.rs:
