/root/repo/target/debug/deps/predict_baseline-616ba2c7c86a6366.d: crates/bench/src/bin/predict-baseline.rs

/root/repo/target/debug/deps/predict_baseline-616ba2c7c86a6366: crates/bench/src/bin/predict-baseline.rs

crates/bench/src/bin/predict-baseline.rs:
