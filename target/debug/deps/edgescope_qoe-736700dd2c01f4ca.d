/root/repo/target/debug/deps/edgescope_qoe-736700dd2c01f4ca.d: crates/qoe/src/lib.rs crates/qoe/src/device.rs crates/qoe/src/framesim.rs crates/qoe/src/game.rs crates/qoe/src/gaming.rs crates/qoe/src/link.rs crates/qoe/src/streaming.rs crates/qoe/src/video.rs

/root/repo/target/debug/deps/libedgescope_qoe-736700dd2c01f4ca.rmeta: crates/qoe/src/lib.rs crates/qoe/src/device.rs crates/qoe/src/framesim.rs crates/qoe/src/game.rs crates/qoe/src/gaming.rs crates/qoe/src/link.rs crates/qoe/src/streaming.rs crates/qoe/src/video.rs

crates/qoe/src/lib.rs:
crates/qoe/src/device.rs:
crates/qoe/src/framesim.rs:
crates/qoe/src/game.rs:
crates/qoe/src/gaming.rs:
crates/qoe/src/link.rs:
crates/qoe/src/streaming.rs:
crates/qoe/src/video.rs:
