/root/repo/target/debug/deps/edgescope_sched-9106be36afcf0582.d: crates/sched/src/lib.rs crates/sched/src/elastic.rs crates/sched/src/gslb.rs crates/sched/src/migration.rs crates/sched/src/predictive.rs crates/sched/src/requests.rs crates/sched/src/simulate.rs

/root/repo/target/debug/deps/edgescope_sched-9106be36afcf0582: crates/sched/src/lib.rs crates/sched/src/elastic.rs crates/sched/src/gslb.rs crates/sched/src/migration.rs crates/sched/src/predictive.rs crates/sched/src/requests.rs crates/sched/src/simulate.rs

crates/sched/src/lib.rs:
crates/sched/src/elastic.rs:
crates/sched/src/gslb.rs:
crates/sched/src/migration.rs:
crates/sched/src/predictive.rs:
crates/sched/src/requests.rs:
crates/sched/src/simulate.rs:
