/root/repo/target/debug/deps/trace_tool-ecb9db0d9d27772f.d: crates/trace/src/bin/trace-tool.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_tool-ecb9db0d9d27772f.rmeta: crates/trace/src/bin/trace-tool.rs Cargo.toml

crates/trace/src/bin/trace-tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
