/root/repo/target/debug/examples/qoe_study-09594a3dee0c4b14.d: examples/qoe_study.rs

/root/repo/target/debug/examples/qoe_study-09594a3dee0c4b14: examples/qoe_study.rs

examples/qoe_study.rs:
