/root/repo/target/debug/examples/billing_study-fc7024e564a13a9c.d: examples/billing_study.rs Cargo.toml

/root/repo/target/debug/examples/libbilling_study-fc7024e564a13a9c.rmeta: examples/billing_study.rs Cargo.toml

examples/billing_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
