/root/repo/target/debug/examples/workload_report-e7ebdb34111568c0.d: examples/workload_report.rs Cargo.toml

/root/repo/target/debug/examples/libworkload_report-e7ebdb34111568c0.rmeta: examples/workload_report.rs Cargo.toml

examples/workload_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
