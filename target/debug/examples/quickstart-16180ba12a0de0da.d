/root/repo/target/debug/examples/quickstart-16180ba12a0de0da.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-16180ba12a0de0da.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
