/root/repo/target/debug/examples/workload_report-16ad57cd956e155f.d: examples/workload_report.rs

/root/repo/target/debug/examples/workload_report-16ad57cd956e155f: examples/workload_report.rs

examples/workload_report.rs:
