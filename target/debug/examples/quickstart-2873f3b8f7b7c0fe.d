/root/repo/target/debug/examples/quickstart-2873f3b8f7b7c0fe.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2873f3b8f7b7c0fe: examples/quickstart.rs

examples/quickstart.rs:
