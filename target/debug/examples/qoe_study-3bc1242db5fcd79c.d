/root/repo/target/debug/examples/qoe_study-3bc1242db5fcd79c.d: examples/qoe_study.rs Cargo.toml

/root/repo/target/debug/examples/libqoe_study-3bc1242db5fcd79c.rmeta: examples/qoe_study.rs Cargo.toml

examples/qoe_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
