/root/repo/target/debug/examples/billing_study-85805723bbe41fab.d: examples/billing_study.rs

/root/repo/target/debug/examples/billing_study-85805723bbe41fab: examples/billing_study.rs

examples/billing_study.rs:
