/root/repo/target/debug/examples/edge_operations-5ac15f9d2516a97e.d: examples/edge_operations.rs Cargo.toml

/root/repo/target/debug/examples/libedge_operations-5ac15f9d2516a97e.rmeta: examples/edge_operations.rs Cargo.toml

examples/edge_operations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
