/root/repo/target/debug/examples/crowd_campaign-1e7c298e689484ab.d: examples/crowd_campaign.rs

/root/repo/target/debug/examples/crowd_campaign-1e7c298e689484ab: examples/crowd_campaign.rs

examples/crowd_campaign.rs:
