/root/repo/target/debug/examples/crowd_campaign-129b8f2502a1bb8e.d: examples/crowd_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libcrowd_campaign-129b8f2502a1bb8e.rmeta: examples/crowd_campaign.rs Cargo.toml

examples/crowd_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
