/root/repo/target/debug/examples/edge_operations-174f097ebb85d003.d: examples/edge_operations.rs

/root/repo/target/debug/examples/edge_operations-174f097ebb85d003: examples/edge_operations.rs

examples/edge_operations.rs:
